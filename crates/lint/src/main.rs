//! `ruby-lint`: the repo's lint wall, run by `tier1.sh` alongside
//! clippy. Scans every workspace library source file and enforces three
//! rules that clippy cannot express:
//!
//! 1. **panics** — no `.unwrap()` / `.expect(` / `panic!(` /
//!    `unreachable!(` / `todo!(` / `unimplemented!(` in library code.
//!    A site may be allowlisted with an adjacent justification comment:
//!    `// lint: allow(panics) — <why this cannot fire / why dying is
//!    right>`. An allow without a justification is itself an error.
//! 2. **ordering** — every `Ordering::Relaxed` / `Ordering::AcqRel` use
//!    must carry an adjacent `// ordering: <rationale>` comment
//!    explaining why that memory ordering is sufficient.
//! 3. **panics (search)** — inside `crates/search` the rule tightens:
//!    a panic-family site needs an adjacent `// justified: <why this
//!    cannot fire / why dying is right>` rationale (the long-run search
//!    layer must not abort; see DESIGN.md §5.5), and *bare* asserts
//!    (`assert!` / `assert_eq!` / `assert_ne!`, but not `debug_assert`)
//!    need one too.
//! 4. **cast** — no `as`-casts to integer types inside `crates/model`
//!    (the cost model's hot paths), where a silent truncation would
//!    corrupt paper figures, nor in `permute.rs` (the Feistel cipher's
//!    round function must stay all-u64 — a truncating cast silently
//!    breaks the bijection); `// lint: allow(cast) — <why lossless>`
//!    allowlists a site.
//! 5. **ordering (telemetry)** — inside `crates/telemetry` the rule
//!    tightens: *every* `Ordering::` use (including `SeqCst`) and every
//!    `Atomic*::new(` construction needs an adjacent `// ordering:`
//!    rationale. The crate's whole job is lock-free publication; an
//!    undocumented ordering there is a future correctness bug.
//!
//! "Adjacent" means on the same line or within the four lines below the
//! end of the comment block containing the marker, so one comment can
//! cover a small cluster of related sites.
//!
//! Test code is exempt: `#[cfg(test)]`-gated blocks are masked by brace
//! counting, and `tests.rs` / `*_tests.rs` files, `tests/`, `benches/`,
//! `examples/`, and binary entry points (`main.rs`, `src/bin/`) are
//! skipped entirely.
//!
//! Exit status: 0 when clean, 1 with findings (printed one per line as
//! `path:line: [rule] message`).

use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines below a marker comment's last line it still covers.
const ADJACENCY: usize = 4;

/// Minimum justification length (characters after the marker) for an
/// allowlist entry to count as justified.
const MIN_JUSTIFICATION: usize = 10;

#[derive(Debug)]
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_sources(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            findings.push(Finding {
                path: path.clone(),
                line: 0,
                rule: "io",
                message: "could not read file".into(),
            });
            continue;
        };
        scanned += 1;
        let display = path.strip_prefix(&root).unwrap_or(path).to_path_buf();
        scan_file(&display, &text, &mut findings);
    }

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("ruby-lint: {scanned} files clean");
    } else {
        println!(
            "ruby-lint: {} finding(s) in {scanned} files",
            findings.len()
        );
        std::process::exit(1);
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Gathers the library sources under `crates/`, skipping this crate,
/// binary entry points, and test-only files.
fn collect_sources(crates_dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(crates_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() || path.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        walk_sources(&path.join("src"), out);
    }
}

fn walk_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "bin" || name == "tests" || name == "benches" || name == "examples" {
                continue;
            }
            walk_sources(&path, out);
        } else if name.ends_with(".rs")
            && name != "main.rs"
            && name != "tests.rs"
            && !name.ends_with("_tests.rs")
        {
            out.push(path);
        }
    }
}

/// Per-rule "last marker line" bookkeeping. A marker's position is
/// bumped along the comment block it lives in, so multi-line comments
/// cover sites just below their final line.
#[derive(Default)]
struct Markers {
    allow_panics: Option<usize>,
    allow_panics_justified: bool,
    allow_cast: Option<usize>,
    allow_cast_justified: bool,
    justified: Option<usize>,
    ordering: Option<usize>,
}

impl Markers {
    fn covers(last: Option<usize>, line: usize) -> bool {
        last.is_some_and(|m| line >= m && line - m <= ADJACENCY)
    }
}

fn scan_file(display: &Path, text: &str, findings: &mut Vec<Finding>) {
    let in_model = display.components().any(|c| c.as_os_str() == "model");
    // The permutation cipher is bijective only while every word stays
    // u64 end to end, so it joins the cast-audited set.
    let in_permute = display.file_name().is_some_and(|f| f == "permute.rs");
    let in_search = display.components().any(|c| c.as_os_str() == "search");
    let in_telemetry = display.components().any(|c| c.as_os_str() == "telemetry");
    let mut markers = Markers::default();
    // Depth of an active `#[cfg(test)]`-masked block, if any.
    let mut masked_depth: Option<i64> = None;
    // A test-gating attribute was seen; mask starts at the next `{`.
    let mut pending_mask = false;
    let mut prev_was_comment = false;
    let mut prev_line_no = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        let is_comment = trimmed.starts_with("//");

        // Marker detection runs on every line (comments and trailing
        // comments alike) before any masking, so an allow inside a
        // masked block is simply unused, never an error.
        let had_marker = detect_markers(raw, line_no, &mut markers, findings, display);
        if is_comment && !had_marker && prev_was_comment && prev_line_no + 1 == line_no {
            // A continuation line of a comment block: slide any marker
            // that ended on the previous line down with the block.
            for slot in [
                &mut markers.allow_panics,
                &mut markers.allow_cast,
                &mut markers.justified,
                &mut markers.ordering,
            ] {
                if *slot == Some(prev_line_no) {
                    *slot = Some(line_no);
                }
            }
        }
        prev_was_comment = is_comment;
        prev_line_no = line_no;
        if is_comment {
            continue;
        }

        // Track and honor `#[cfg(test)]` masking.
        if let Some(depth) = &mut masked_depth {
            *depth += brace_delta(raw);
            if *depth <= 0 {
                masked_depth = None;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)")
            || trimmed.starts_with("#[cfg(any(test")
            || trimmed.starts_with("#[cfg_attr(test")
        {
            pending_mask = true;
            continue;
        }
        if pending_mask {
            if raw.contains('{') {
                pending_mask = false;
                let depth = brace_delta(raw);
                if depth > 0 {
                    masked_depth = Some(depth);
                }
                continue;
            }
            if raw.contains(';') {
                // Out-of-line item (`mod foo;`): nothing to mask here;
                // the file itself is skipped by name.
                pending_mask = false;
            }
            continue;
        }

        // Strip a trailing line comment before matching code patterns,
        // sparing `://` so URLs in strings don't truncate the line.
        let code = strip_trailing_comment(raw);

        for pattern in [
            ".unwrap()",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
        ] {
            let covered = if in_search {
                // crates/search must not abort mid-run: the stricter
                // `// justified:` rationale is the only accepted marker.
                Markers::covers(markers.justified, line_no)
            } else {
                Markers::covers(markers.allow_panics, line_no)
                    || Markers::covers(markers.justified, line_no)
            };
            if code.contains(pattern) && !covered {
                let marker = if in_search {
                    "`// justified: <rationale>`"
                } else {
                    "`// lint: allow(panics) — <justification>`"
                };
                findings.push(Finding {
                    path: display.to_path_buf(),
                    line: line_no,
                    rule: "panics",
                    message: format!("`{pattern}` in library code without an adjacent {marker}"),
                });
            }
        }

        if in_search && has_bare_assert(code) && !Markers::covers(markers.justified, line_no) {
            findings.push(Finding {
                path: display.to_path_buf(),
                line: line_no,
                rule: "panics",
                message: "bare assert in crates/search without an adjacent \
                          `// justified: <rationale>` (prefer debug_assert or a Result)"
                    .into(),
            });
        }

        for ordering in ["Ordering::Relaxed", "Ordering::AcqRel"] {
            if code.contains(ordering) && !Markers::covers(markers.ordering, line_no) {
                findings.push(Finding {
                    path: display.to_path_buf(),
                    line: line_no,
                    rule: "ordering",
                    message: format!(
                        "`{ordering}` without an adjacent `// ordering: <rationale>` comment"
                    ),
                });
            }
        }

        if in_telemetry && !Markers::covers(markers.ordering, line_no) {
            // The Relaxed/AcqRel loop above already reported those; this
            // covers the orderings it deliberately leaves alone
            // (SeqCst, Acquire, Release) plus atomic construction.
            let other_ordering = code.contains("Ordering::")
                && !code.contains("Ordering::Relaxed")
                && !code.contains("Ordering::AcqRel");
            if other_ordering || atomic_init(code) {
                findings.push(Finding {
                    path: display.to_path_buf(),
                    line: line_no,
                    rule: "ordering",
                    message: "atomic use in crates/telemetry without an adjacent \
                              `// ordering: <rationale>` comment"
                        .into(),
                });
            }
        }

        if in_model || in_permute {
            if let Some(target) = int_cast_target(code) {
                if !Markers::covers(markers.allow_cast, line_no) {
                    let place = if in_model {
                        "the cost model"
                    } else {
                        "the permutation cipher"
                    };
                    findings.push(Finding {
                        path: display.to_path_buf(),
                        line: line_no,
                        rule: "cast",
                        message: format!(
                            "`as {target}` in {place} without an adjacent \
                             `// lint: allow(cast) — <justification>`"
                        ),
                    });
                }
            }
        }
    }
}

/// Records any lint/ordering markers on this line; returns whether one
/// was found. Unjustified allowlist entries are findings themselves.
fn detect_markers(
    raw: &str,
    line_no: usize,
    markers: &mut Markers,
    findings: &mut Vec<Finding>,
    display: &Path,
) -> bool {
    let mut found = false;
    for (needle, rule) in [
        ("// lint: allow(panics)", "panics"),
        ("// lint: allow(cast)", "cast"),
    ] {
        if let Some(at) = raw.find(needle) {
            found = true;
            let justification = raw[at + needle.len()..]
                .trim_start_matches([' ', '—', '-', ':'])
                .trim();
            let justified = justification.chars().count() >= MIN_JUSTIFICATION;
            if !justified {
                findings.push(Finding {
                    path: display.to_path_buf(),
                    line: line_no,
                    rule,
                    message: format!("allowlist entry without a justification: `{needle}`"),
                });
            }
            if rule == "panics" {
                markers.allow_panics = Some(line_no);
                markers.allow_panics_justified = justified;
            } else {
                markers.allow_cast = Some(line_no);
                markers.allow_cast_justified = justified;
            }
        }
    }
    if let Some(at) = raw.find("// justified:") {
        found = true;
        let rationale = raw[at + "// justified:".len()..].trim();
        if rationale.chars().count() < MIN_JUSTIFICATION {
            findings.push(Finding {
                path: display.to_path_buf(),
                line: line_no,
                rule: "panics",
                message: "`// justified:` without a rationale".into(),
            });
        }
        markers.justified = Some(line_no);
    }
    if raw.contains("// ordering:") {
        found = true;
        markers.ordering = Some(line_no);
    }
    found
}

/// Whether the line uses a bare `assert!` / `assert_eq!` / `assert_ne!`
/// (the `debug_assert` family is fine: compiled out of release runs).
fn has_bare_assert(code: &str) -> bool {
    for pattern in ["assert!(", "assert_eq!(", "assert_ne!("] {
        let mut rest = code;
        while let Some(at) = rest.find(pattern) {
            let preceded_by_debug = at >= 6 && rest[..at].ends_with("debug_");
            let mid_identifier = at > 0
                && rest[..at]
                    .bytes()
                    .next_back()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
            if !preceded_by_debug && !mid_identifier {
                return true;
            }
            rest = &rest[at + pattern.len()..];
        }
    }
    false
}

/// Net `{`/`}` balance of a line — good enough for rustfmt'd sources,
/// where braces inside string literals are vanishingly rare.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    for c in line.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// The code portion of a line, with any trailing `//` comment removed
/// (a `//` immediately preceded by `:` is kept: it is a URL scheme).
fn strip_trailing_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'/' && bytes[i + 1] == b'/' && (i == 0 || bytes[i - 1] != b':') {
            return &line[..i];
        }
        i += 1;
    }
    line
}

/// Whether the line constructs an atomic (`AtomicU64::new(`,
/// `AtomicUsize::new(`, …) — the declaration sites the telemetry rule
/// wants a rationale on.
fn atomic_init(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("Atomic") {
        let after = &rest[at + "Atomic".len()..];
        let ty_len = after.bytes().take_while(u8::is_ascii_alphanumeric).count();
        if after[ty_len..].starts_with("::new(") {
            return true;
        }
        rest = after;
    }
    false
}

/// The integer type named by the first ` as <int>` cast on the line, if
/// any. Casts to floats are not truncating in the sense this rule
/// polices (the model's arithmetic is deliberately f64).
fn int_cast_target(code: &str) -> Option<&'static str> {
    const TARGETS: [&str; 10] = [
        "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
    ];
    let mut rest = code;
    while let Some(at) = rest.find(" as ") {
        let after = &rest[at + 4..];
        for target in TARGETS {
            if after.starts_with(target) {
                let tail = after.as_bytes().get(target.len());
                let boundary = tail.is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
                if boundary {
                    return Some(target);
                }
            }
        }
        rest = &rest[at + 4..];
    }
    None
}
