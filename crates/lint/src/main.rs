//! `ruby-lint` — workspace lint driver.
//!
//! ```text
//! ruby-lint [--root PATH] [--json] [--out PATH] [--baseline PATH]
//!           [--write-baseline PATH] [--update-schema-lock]
//! ```
//!
//! All analysis lives in the `ruby_lint` library; this binary only
//! parses flags, picks an output format, and maps findings to an exit
//! code (0 clean, 1 errors, 2 warnings only).

use std::path::PathBuf;
use std::process::ExitCode;

use ruby_lint::passes::schema_drift;
use ruby_lint::{exit_code, model::Workspace, render_json, Baseline, Finding};

struct Args {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    update_schema_lock: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        out: None,
        baseline: None,
        write_baseline: None,
        update_schema_lock: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--json" => args.json = true,
            "--update-schema-lock" => args.update_schema_lock = true,
            "--root" => args.root = path_value("--root")?,
            "--out" => args.out = Some(path_value("--out")?),
            "--baseline" => args.baseline = Some(path_value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(path_value("--write-baseline")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("ruby-lint: {message}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => return fail(&err),
    };

    let ws = Workspace::load(&args.root);

    if args.update_schema_lock {
        let lock = schema_drift::render_lock(&schema_drift::current_surfaces(&ws));
        let path = args.root.join(schema_drift::LOCK_PATH);
        if let Err(err) = ruby_telemetry::write_atomic(&path, lock.as_bytes()) {
            return fail(&format!("writing {}: {err}", path.display()));
        }
        println!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let mut findings = ruby_lint::run_model(&ws);

    if let Some(path) = &args.write_baseline {
        if let Err(err) = ruby_telemetry::write_atomic(path, render_json(&findings).as_bytes()) {
            return fail(&format!("writing {}: {err}", path.display()));
        }
        println!(
            "wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => return fail(&format!("reading baseline {}: {err}", path.display())),
        };
        match Baseline::parse(&text) {
            Ok(baseline) => findings = baseline.filter(findings),
            Err(err) => return fail(&format!("parsing baseline {}: {err}", path.display())),
        }
    }

    if args.json {
        let text = render_json(&findings);
        match &args.out {
            Some(path) => {
                if let Err(err) = ruby_telemetry::write_atomic(path, text.as_bytes()) {
                    return fail(&format!("writing {}: {err}", path.display()));
                }
            }
            None => print!("{text}"),
        }
    } else {
        report_human(&findings);
    }

    ExitCode::from(u8::try_from(exit_code(&findings)).unwrap_or(1))
}

fn report_human(findings: &[Finding]) {
    for finding in findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("ruby-lint: clean");
    } else {
        println!("ruby-lint: {} finding(s)", findings.len());
    }
}
