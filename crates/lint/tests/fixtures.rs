//! Fixture corpus: every pass has at least one known-bad mini
//! workspace it must flag and one known-clean twin it must accept.
//! Assertions filter findings to the pass's own code band, so the
//! fixtures stay independent of each other (a lock fixture is free to
//! contain an unwrap, say).

use std::path::PathBuf;

use ruby_lint::{run, Finding, LintCode};

fn fixture(name: &str, side: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .join(side);
    run(&root)
}

fn codes(findings: &[Finding], band: impl Fn(LintCode) -> bool) -> Vec<LintCode> {
    findings
        .iter()
        .map(|f| f.code)
        .filter(|&c| band(c))
        .collect()
}

fn legacy_band(c: LintCode) -> bool {
    matches!(
        c,
        LintCode::IoError
            | LintCode::PanicSite
            | LintCode::OrderingRationale
            | LintCode::TruncatingCast
            | LintCode::UnjustifiedAllow
    )
}

fn atomic_band(c: LintCode) -> bool {
    matches!(
        c,
        LintCode::UnpairedRelease | LintCode::UnpairedAcquire | LintCode::MixedOrdering
    )
}

fn lock_band(c: LintCode) -> bool {
    matches!(
        c,
        LintCode::LockOrderInversion | LintCode::LockHeldAcrossBlocking
    )
}

fn schema_band(c: LintCode) -> bool {
    matches!(
        c,
        LintCode::SchemaDrift
            | LintCode::SchemaLockStale
            | LintCode::SchemaSurfaceUnlocked
            | LintCode::SchemaSurfaceRemoved
    )
}

fn feature_band(c: LintCode) -> bool {
    matches!(c, LintCode::FeatureGateLeak | LintCode::ShimCoverageGap)
}

#[test]
fn legacy_bad_flags_every_planted_site() {
    let findings = fixture("legacy", "bad");
    let mut got = codes(&findings, legacy_band);
    got.sort();
    // Two uncovered unwraps (one shadowed by a marker spelled inside a
    // string literal — the lexer must not be fooled), one bare assert,
    // one Relaxed without rationale, one truncating cast.
    assert_eq!(
        got,
        vec![
            LintCode::PanicSite,
            LintCode::PanicSite,
            LintCode::PanicSite,
            LintCode::OrderingRationale,
            LintCode::TruncatingCast,
        ],
        "{findings:#?}"
    );
}

#[test]
fn legacy_clean_accepts_markers_and_literal_edge_cases() {
    let findings = fixture("legacy", "clean");
    assert!(codes(&findings, legacy_band).is_empty(), "{findings:#?}");
}

#[test]
fn atomic_bad_flags_each_broken_handshake() {
    let findings = fixture("atomic_protocol", "bad");
    let mut got = codes(&findings, atomic_band);
    got.sort();
    assert_eq!(
        got,
        vec![
            LintCode::UnpairedRelease,
            LintCode::UnpairedAcquire,
            LintCode::MixedOrdering,
        ],
        "{findings:#?}"
    );
}

#[test]
fn atomic_clean_accepts_whole_handshakes() {
    let findings = fixture("atomic_protocol", "clean");
    assert!(codes(&findings, atomic_band).is_empty(), "{findings:#?}");
}

#[test]
fn locks_bad_flags_inversion_and_blocking_hold() {
    let findings = fixture("locks", "bad");
    let mut got = codes(&findings, lock_band);
    got.sort();
    assert_eq!(
        got,
        vec![
            LintCode::LockOrderInversion,
            LintCode::LockHeldAcrossBlocking,
        ],
        "{findings:#?}"
    );
}

#[test]
fn locks_clean_accepts_global_order_and_released_guards() {
    let findings = fixture("locks", "clean");
    assert!(codes(&findings, lock_band).is_empty(), "{findings:#?}");
}

#[test]
fn schema_bad_flags_field_change_without_version_bump() {
    let findings = fixture("schema_drift", "bad");
    let got = codes(&findings, schema_band);
    assert_eq!(got, vec![LintCode::SchemaDrift], "{findings:#?}");
    let drift = findings
        .iter()
        .find(|f| f.code == LintCode::SchemaDrift)
        .expect("drift finding");
    assert!(
        drift.message.contains("best_cost"),
        "message should name the added field: {}",
        drift.message
    );
}

#[test]
fn schema_clean_accepts_matching_lock() {
    let findings = fixture("schema_drift", "clean");
    assert!(codes(&findings, schema_band).is_empty(), "{findings:#?}");
}

#[test]
fn features_bad_flags_gate_leak_and_shim_gap() {
    let findings = fixture("features", "bad");
    let mut got = codes(&findings, feature_band);
    got.sort();
    assert_eq!(
        got,
        vec![LintCode::FeatureGateLeak, LintCode::ShimCoverageGap],
        "{findings:#?}"
    );
    let gap = findings
        .iter()
        .find(|f| f.code == LintCode::ShimCoverageGap)
        .expect("gap finding");
    assert!(
        gap.message.contains("AtomicBool"),
        "the untested type must be named: {}",
        gap.message
    );
}

#[test]
fn features_clean_accepts_twinned_defs_and_covered_shims() {
    let findings = fixture("features", "clean");
    assert!(codes(&findings, feature_band).is_empty(), "{findings:#?}");
}
