//! Property tests for the lexer: random snippets assembled from the
//! nastiest fragment inventory (comment syntax inside literals, quote
//! syntax inside comments, raw strings, lifetimes, nested block
//! comments) must tokenize into a lossless, contiguous, line-accurate
//! stream.

use proptest::prelude::*;
use ruby_lint::lexer::tokenize;

/// Fragments chosen so that any concatenation is still lexically
/// unambiguous at the boundaries (every fragment ends at a token
/// boundary and none opens an unterminated literal).
const FRAGMENTS: &[&str] = &[
    "let x = 1;\n",
    "\"a // not a comment\"",
    "\"quote \\\" inside\"",
    "r#\"raw \" with // slashes\"#",
    "r\"plain raw\"",
    "b\"bytes // too\"",
    "'a'",
    "'\\''",
    "'\\n'",
    "&'static str",
    "'lifetime",
    "// line comment with \" quote\n",
    "/* block /* nested */ still one comment */",
    "ident_0123",
    "r#type",
    "42.5e3",
    "0xFF",
    "::",
    "=>",
    " \t ",
    "\n\n",
    "fn f() { g(); }\n",
    "m!{ \"s\" /* c */ }",
];

fn snippet(seed: u64, len: usize) -> String {
    // Deterministic xorshift so failures replay from the seed alone.
    let mut s = seed | 1;
    let mut out = String::new();
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.push_str(FRAGMENTS[(s as usize) % FRAGMENTS.len()]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Concatenating every token's text reproduces the input
    /// byte-for-byte — the lexer never drops, merges, or invents bytes.
    #[test]
    fn tokens_round_trip_to_the_source(seed in 0u64..u64::MAX, len in 1usize..32) {
        let source = snippet(seed, len);
        let tokens = tokenize(&source);
        let respelled: String = tokens.iter().map(|t| t.text(&source)).collect();
        prop_assert_eq!(&respelled, &source);
    }

    /// Tokens tile the source exactly: each begins where the previous
    /// ended, starting at 0 and finishing at the last byte.
    #[test]
    fn tokens_are_contiguous_and_cover_the_span(seed in 0u64..u64::MAX, len in 1usize..32) {
        let source = snippet(seed, len);
        let tokens = tokenize(&source);
        let mut cursor = 0;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor);
            prop_assert!(t.end > t.start, "empty token at {}", t.start);
            cursor = t.end;
        }
        prop_assert_eq!(cursor, source.len());
    }

    /// Each token's recorded line is 1 + the number of newlines before
    /// its first byte.
    #[test]
    fn token_lines_match_newline_counts(seed in 0u64..u64::MAX, len in 1usize..32) {
        let source = snippet(seed, len);
        for t in tokenize(&source) {
            let expect = 1 + source[..t.start].bytes().filter(|&b| b == b'\n').count();
            prop_assert_eq!(t.line, expect, "token at byte {}", t.start);
        }
    }
}
