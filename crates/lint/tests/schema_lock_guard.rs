//! Acceptance guard for the schema-drift pass against the *real*
//! workspace: the committed `schema.lock` must be current, and
//! deleting a field from `SearchOutcome`'s fingerprint (in memory —
//! the tree is untouched) must trip `RBYL240` without a version bump.

use std::path::PathBuf;

use ruby_lint::model::Workspace;
use ruby_lint::passes::schema_drift::{current_surfaces, parse_lock, render_lock, LOCK_PATH};
use ruby_lint::passes::{Pass, SchemaDriftPass};
use ruby_lint::LintCode;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn committed_lock_matches_the_tree() {
    let root = workspace_root();
    let ws = Workspace::load(&root);
    let current = current_surfaces(&ws);
    assert!(
        current.contains_key("SearchOutcome"),
        "SearchOutcome surface must be fingerprinted; got {:?}",
        current.keys().collect::<Vec<_>>()
    );
    let committed =
        std::fs::read_to_string(root.join(LOCK_PATH)).expect("schema.lock is committed");
    let locked = parse_lock(&committed).expect("schema.lock parses");
    assert_eq!(
        locked, current,
        "schema.lock is stale; regenerate with `ruby-lint --update-schema-lock`"
    );
    // The renderer is the canonical writer: its output must reparse to
    // the same map (guards against format skew between write and read).
    assert_eq!(
        parse_lock(&render_lock(&current)).expect("reparse"),
        current
    );
}

#[test]
fn deleting_a_search_outcome_field_trips_drift_without_a_bump() {
    let root = workspace_root();
    let mut ws = Workspace::load(&root);
    // Drop one field from the in-memory fingerprint, exactly what a
    // silent wire-format change looks like to the pass.
    let mut removed = None;
    for file in &mut ws.files {
        for surface in &mut file.schema_surfaces {
            if surface.name == "SearchOutcome" {
                removed = Some(surface.fields.remove(surface.fields.len() - 1));
            }
        }
    }
    let removed = removed.expect("SearchOutcome surface exists");

    let mut findings = Vec::new();
    SchemaDriftPass.run(&ws, &mut findings);
    let drift: Vec<_> = findings
        .iter()
        .filter(|f| f.code == LintCode::SchemaDrift)
        .collect();
    assert_eq!(drift.len(), 1, "{findings:#?}");
    assert!(
        drift[0].message.contains(&removed),
        "drift message must name the missing field `{removed}`: {}",
        drift[0].message
    );
}
