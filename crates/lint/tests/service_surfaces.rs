//! Coverage guard for the mapper-as-a-service layers: the schema-drift
//! pass must fingerprint the store/server wire types, and the
//! lock-discipline pass must actually see the server's worker-pool
//! mutex sites (a pass that silently skips a crate "passes" forever).

use std::path::PathBuf;

use ruby_lint::model::Workspace;
use ruby_lint::passes::schema_drift::current_surfaces;
use ruby_lint::passes::{LockDisciplinePass, Pass, SchemaDriftPass};
use ruby_lint::LintCode;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn store_and_server_wire_types_are_fingerprinted() {
    let ws = Workspace::load(&workspace_root());
    let current = current_surfaces(&ws);
    for (name, via, field) in [
        ("StoreRecord", "STORE_SCHEMA", "mapping"),
        ("log::encode", "STORE_SCHEMA", "crc"),
        ("MapQuery", "API_SCHEMA", "workload"),
        ("MapResponse", "API_SCHEMA", "source"),
    ] {
        let entry = current
            .get(name)
            .unwrap_or_else(|| panic!("{name} must be a fingerprinted schema surface"));
        assert_eq!(entry.via, via, "{name} versions through the wrong const");
        assert!(
            entry.fields.iter().any(|f| f == field),
            "{name} fingerprint lost the `{field}` field: {:?}",
            entry.fields
        );
        assert_eq!(
            entry.fields.first().map(String::as_str),
            Some("schema"),
            "{name} must lead with the schema field"
        );
    }
}

/// The resilience fields added for overload handling (shed hints,
/// degradation flags, deadlines) must be schema-lock-tracked: present in
/// the live fingerprint at wire version 2 AND recorded in the committed
/// lock, so any later drift trips the pass instead of slipping out
/// silently.
#[test]
fn resilience_wire_fields_are_schema_lock_tracked() {
    let ws = Workspace::load(&workspace_root());
    let current = current_surfaces(&ws);
    let lock =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("schema.lock"))
            .expect("schema.lock is committed next to the lint crate");
    for (name, fields) in [
        ("MapQuery", &["deadline_ms", "client"][..]),
        (
            "MapResponse",
            &["degraded", "retry_after_ms", "stop_reason"][..],
        ),
    ] {
        let entry = current
            .get(name)
            .unwrap_or_else(|| panic!("{name} must be a fingerprinted schema surface"));
        assert_eq!(entry.version, 2, "{name} must be at wire version 2");
        let locked = lock
            .lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from the committed schema.lock"));
        assert!(
            locked.contains("version=2"),
            "committed lock is stale for {name}: {locked}"
        );
        for field in fields {
            assert!(
                entry.fields.iter().any(|f| f == field),
                "{name} fingerprint lost the `{field}` field: {:?}",
                entry.fields
            );
            assert!(
                locked.contains(field),
                "committed lock for {name} lost `{field}`: {locked}"
            );
        }
    }
}

#[test]
fn server_worker_pool_mutexes_are_visible_to_lock_discipline() {
    let ws = Workspace::load(&workspace_root());
    let service = ws
        .files
        .iter()
        .find(|f| f.crate_name == "server" && f.path.ends_with("service.rs"))
        .expect("crates/server/src/service.rs is part of the workspace");
    // The pass models `.lock()` call sites; the service has at least the
    // store mutex, the batch result slots, and the shared progress sink.
    assert!(
        service.lock_sites.len() >= 3,
        "expected the server's mutex sites to be modeled, got {:?}",
        service.lock_sites
    );
    let store_file = ws
        .files
        .iter()
        .find(|f| f.crate_name == "store" && f.path.ends_with("lib.rs"))
        .expect("crates/store/src/lib.rs is part of the workspace");
    assert!(!store_file.is_test_file);

    // And the discipline + drift passes must hold over the real tree —
    // no store/server finding may be outstanding.
    let mut findings = Vec::new();
    LockDisciplinePass.run(&ws, &mut findings);
    SchemaDriftPass.run(&ws, &mut findings);
    let service_findings: Vec<_> = findings
        .iter()
        .filter(|f| {
            matches!(
                f.code,
                LintCode::LockOrderInversion
                    | LintCode::LockHeldAcrossBlocking
                    | LintCode::SchemaDrift
                    | LintCode::SchemaSurfaceUnlocked
            ) && (f.path.to_string_lossy().contains("crates/server")
                || f.path.to_string_lossy().contains("crates/store"))
        })
        .collect();
    assert!(service_findings.is_empty(), "{service_findings:#?}");
}
