//! Known-bad atomic-protocol fixture: three broken handshakes.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cells {
    ready: AtomicU64,
    flag: AtomicU64,
    mode: AtomicU64,
}

impl Cells {
    pub fn publish(&self) {
        // Release store, but every load of `ready` below is Relaxed:
        // the acquire half of the handshake is missing.
        self.ready.store(1, Ordering::Release);
    }

    pub fn poll_ready(&self) -> u64 {
        // ordering: polled flag (keeps the legacy rule quiet; the
        // protocol pass must still see the missing Acquire).
        self.ready.load(Ordering::Relaxed)
    }

    pub fn consume(&self) -> u64 {
        // Acquire load, but `flag` is only ever stored Relaxed: there
        // is no Release publication to synchronize with.
        self.flag.load(Ordering::Acquire)
    }

    pub fn set_flag(&self) {
        // ordering: see consume (deliberately mismatched fixture).
        self.flag.store(1, Ordering::Relaxed);
    }

    pub fn set_mode(&self) {
        self.mode.store(2, Ordering::SeqCst);
    }

    pub fn read_mode(&self) -> u64 {
        let m = self.mode.load(Ordering::Relaxed);
        m
    }
}
