//! Known-clean atomic-protocol fixture: whole handshakes only.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cells {
    ready: AtomicU64,
    mode: AtomicU64,
}

impl Cells {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }

    pub fn consume(&self) -> u64 {
        self.ready.load(Ordering::Acquire)
    }

    pub fn set_mode(&self) {
        self.mode.store(2, Ordering::SeqCst);
    }

    pub fn read_mode_fast(&self) -> u64 {
        // ordering: deliberate escalation mix — the SeqCst store is the
        // fence; this hot-path read only needs the value.
        self.mode.load(Ordering::Relaxed)
    }
}
