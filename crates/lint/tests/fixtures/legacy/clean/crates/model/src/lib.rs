//! Known-clean cast fixture.
pub fn widen(x: u32) -> u64 {
    // Widening; still audited because the rule is textual.
    // lint: allow(cast) — u32 -> u64 is lossless.
    u64::from(x) + (x as u64)
}

pub fn float_math(x: u64) -> f64 {
    x as f64
}
