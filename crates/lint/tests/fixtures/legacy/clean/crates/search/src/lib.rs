//! Known-clean legacy fixture: every site carries its marker, and the
//! lexer regressions (comment syntax inside literals, string syntax
//! inside comments) must not confuse coverage.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn covered_unwrap(x: Option<u64>) -> u64 {
    // justified: the caller checked is_some() on the line above.
    x.unwrap()
}

pub fn slashes_in_string_then_marker(x: Option<u64>) -> u64 {
    // A `//` inside the string must not swallow the real trailing
    // marker comment after it.
    let _url = "https://example.com/path"; // justified: checked above.
    let _block = "/* not a comment */";
    x.unwrap() // justified: infallible by construction here.
}

// An unmatched quote inside this comment: it's fine — "
pub fn quote_in_comment_above(v: u64) -> u64 {
    debug_assert!(v > 0);
    v
}

pub fn relaxed_with_rationale(c: &AtomicU64) -> u64 {
    // ordering: standalone statistics counter, no payload published.
    c.load(Ordering::Relaxed)
}
