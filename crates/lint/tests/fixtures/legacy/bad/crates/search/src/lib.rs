//! Known-bad legacy fixture: every site below must be flagged.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn uncovered_unwrap(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn marker_hidden_in_string(x: Option<u64>) -> u64 {
    // The string literal spells a marker, but it is data, not a
    // comment: the site must still be flagged.
    let _decoy = "// lint: allow(panics) — not a marker";
    x.unwrap()
}

pub fn bare_assert(v: u64) {
    assert!(v > 0);
}

pub fn relaxed_without_rationale(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}
