//! Known-bad cast fixture: a truncating cast in the cost model.
pub fn truncate(x: u64) -> u32 {
    x as u32
}
