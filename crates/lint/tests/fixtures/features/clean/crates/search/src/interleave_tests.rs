//! Fixture schedule file: both shim-bound types are model-checked.
use crate::sync::{AtomicBool, AtomicU64, Ordering};

#[test]
fn latch_and_counter_schedules() {
    let flag = AtomicBool::new(false);
    let c = AtomicU64::new(0);
    flag.store(true, Ordering::Relaxed);
    c.fetch_add(1, Ordering::Relaxed);
}
