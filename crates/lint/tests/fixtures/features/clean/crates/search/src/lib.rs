//! Known-clean feature fixture: `fast_sum` has a `not(fast)` twin, so
//! every point of the feature matrix compiles; both shim-bound atomic
//! types appear in interleave schedules.
#[cfg(any(test, feature = "shuttle"))]
pub(crate) mod sync {
    pub(crate) use shim::{AtomicBool, AtomicU64, Ordering};
}

#[cfg(feature = "fast")]
pub fn fast_sum(v: &[u64]) -> u64 {
    v.iter().copied().sum()
}

#[cfg(not(feature = "fast"))]
pub fn fast_sum(v: &[u64]) -> u64 {
    let mut acc = 0;
    for x in v {
        acc += x;
    }
    acc
}

pub fn total(v: &[u64]) -> u64 {
    fast_sum(v)
}
