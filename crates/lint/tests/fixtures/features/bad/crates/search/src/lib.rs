//! Known-bad feature fixture: `fast_sum` only exists when the `fast`
//! feature is on, yet `total` calls it unconditionally — every build
//! without the feature breaks. The shim binding is reachable through
//! the `shuttle` feature, but `AtomicBool` never appears in an
//! interleave schedule.
#[cfg(any(test, feature = "shuttle"))]
pub(crate) mod sync {
    pub(crate) use shim::{AtomicBool, AtomicU64, Ordering};
}

#[cfg(feature = "fast")]
pub fn fast_sum(v: &[u64]) -> u64 {
    v.iter().copied().sum()
}

pub fn total(v: &[u64]) -> u64 {
    fast_sum(v)
}
