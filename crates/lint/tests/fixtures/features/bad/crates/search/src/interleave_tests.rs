//! Fixture schedule file: exercises AtomicU64 but never AtomicBool.
use crate::sync::{AtomicU64, Ordering};

#[test]
fn counter_schedules() {
    let c = AtomicU64::new(0);
    c.fetch_add(1, Ordering::Relaxed);
}
