//! Known-bad lock-discipline fixture: an A/B–B/A inversion plus a
//! guard held across a join.
use std::sync::Mutex;
use std::thread::JoinHandle;

pub struct State {
    record: Mutex<u64>,
    poison: Mutex<u64>,
}

impl State {
    pub fn capture(&self) -> u64 {
        let record = self.record.lock();
        let poison = self.poison.lock();
        drop(poison);
        match record {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }

    pub fn restore(&self) -> u64 {
        // Opposite order from `capture`: the classic deadlock pair.
        let poison = self.poison.lock();
        let record = self.record.lock();
        drop(record);
        match poison {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }

    pub fn drain(&self, worker: JoinHandle<u64>) -> u64 {
        let guard = self.record.lock();
        // The worker may be waiting on `record`: joining while holding
        // it deadlocks.
        let got = worker.join();
        drop(guard);
        match got {
            Ok(v) => v,
            Err(_) => 0,
        }
    }
}
