//! Known-clean lock-discipline fixture: one global order, guards
//! released before blocking.
use std::sync::Mutex;
use std::thread::JoinHandle;

pub struct State {
    record: Mutex<u64>,
    poison: Mutex<u64>,
}

impl State {
    pub fn capture(&self) -> u64 {
        let record = self.record.lock();
        let poison = self.poison.lock();
        drop(poison);
        match record {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }

    pub fn audit(&self) -> u64 {
        // Same record-before-poison order as `capture`.
        let record = self.record.lock();
        let poison = self.poison.lock();
        let sum = match (&record, &poison) {
            (Ok(a), Ok(b)) => **a + **b,
            _ => 0,
        };
        sum
    }

    pub fn drain(&self, worker: JoinHandle<u64>) -> u64 {
        let guard = self.record.lock();
        let seed = match &guard {
            Ok(g) => **g,
            Err(_) => 0,
        };
        drop(guard);
        match worker.join() {
            Ok(v) => seed + v,
            Err(_) => seed,
        }
    }
}
