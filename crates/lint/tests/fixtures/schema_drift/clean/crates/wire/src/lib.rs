//! Known-clean schema fixture: the lock matches the wire struct.
pub const WIRE_SCHEMA_VERSION: u64 = 2;

pub struct Report {
    pub schema: u64,
    pub runs: u64,
    pub best_cost: f64,
}

impl_serde_struct!(Report {
    schema,
    runs,
    best_cost,
});
