//! Known-bad schema fixture: `best_cost` was added to the wire struct
//! without bumping `WIRE_SCHEMA_VERSION`, and the lock still records
//! the old shape.
pub const WIRE_SCHEMA_VERSION: u64 = 2;

pub struct Report {
    pub schema: u64,
    pub runs: u64,
    pub best_cost: f64,
}

impl_serde_struct!(Report {
    schema,
    runs,
    best_cost,
});
