//! Deterministic overload behaviour, driven by failpoints: saturation
//! sheds, warm hits keep flowing, degraded neighbors answer, the
//! breaker trips on repeated panics, and deadlines produce `partial`
//! responses. (The randomized end-to-end storm lives in the CLI chaos
//! harness; these pin each mechanism on its own.)
#![cfg(feature = "failpoints")]

use std::path::PathBuf;
use std::sync::Mutex;

use ruby_arch::presets;
use ruby_mapspace::MapspaceKind;
use ruby_server::{
    MapQuery, MapperService, QueryBudget, ResponseSource, ServeError, ServiceConfig,
};
use ruby_workload::ProblemShape;

/// Failpoints are process-global: these tests take turns.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruby-server-overload-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn query(extent: u64) -> MapQuery {
    MapQuery {
        arch: presets::toy_linear(16, 1024),
        workload: ProblemShape::rank1("d", extent),
        mapspace: MapspaceKind::RubyS,
        objective: ruby_search::Objective::Edp,
        budget: QueryBudget::Quick,
        deadline_ms: None,
        client: None,
    }
}

#[test]
fn saturation_sheds_cold_work_while_warm_and_degraded_answers_flow() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("saturate");
    let mut config = ServiceConfig::new(dir.join("store.log"));
    config.workers = 1;
    config.queue_depth = 0;
    config.retry_after_ms = 50;
    let service = MapperService::open(config).unwrap();

    // Warm the store while the pool is healthy.
    let seeded = service.handle(&query(113)).unwrap();
    assert_eq!(seeded.source, ResponseSource::Search);

    // Pin the only worker slot under a slow cold query.
    assert!(ruby_failpoints::arm("server.worker", "delay:400"));
    std::thread::scope(|scope| {
        let slow = scope.spawn(|| service.handle(&query(97)));
        std::thread::sleep(std::time::Duration::from_millis(80));

        // Warm hits bypass admission entirely.
        let warm = service.handle(&query(113)).unwrap();
        assert_eq!(warm.source, ResponseSource::Store);
        assert!(!warm.degraded);

        // A cold query with no warm neighbor is shed, not queued.
        let shed = service.handle(&query(131)).unwrap();
        assert_eq!(shed.source, ResponseSource::Shed);
        assert_eq!(shed.retry_after_ms, Some(50));
        assert!(shed.mapping.is_none());
        assert_eq!(shed.evaluations, 0);

        // The same config under another objective has a warm neighbor:
        // answered degraded instead of shed.
        let mut sibling = query(113);
        sibling.objective = ruby_search::Objective::Energy;
        let degraded = service.handle(&sibling).unwrap();
        assert_eq!(degraded.source, ResponseSource::Store);
        assert!(degraded.degraded);
        assert_eq!(degraded.objective, "edp");
        assert_eq!(degraded.mapping, seeded.mapping);

        let slow = slow.join().unwrap().unwrap();
        assert_eq!(slow.source, ResponseSource::Search);
    });
    ruby_failpoints::disarm("server.worker");

    let stats = service.stats();
    assert!(stats.shed >= 1, "stats: {stats:?}");
    assert!(stats.degraded >= 1, "stats: {stats:?}");
    assert_eq!(stats.breaker_trips, 0);
}

#[test]
fn queued_cold_queries_run_when_a_slot_frees() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("queue");
    let mut config = ServiceConfig::new(dir.join("store.log"));
    config.workers = 1;
    config.queue_depth = 2;
    let service = MapperService::open(config).unwrap();

    assert!(ruby_failpoints::arm("server.worker", "delay:150@1"));
    std::thread::scope(|scope| {
        let slow = scope.spawn(|| service.handle(&query(97)));
        std::thread::sleep(std::time::Duration::from_millis(30));
        // This one waits in the bounded queue, then runs (the delay
        // trigger only fires for the first cold query).
        let queued = service.handle(&query(131)).unwrap();
        assert_eq!(queued.source, ResponseSource::Search);
        assert_eq!(slow.join().unwrap().unwrap().source, ResponseSource::Search);
    });
    ruby_failpoints::disarm("server.worker");
    assert_eq!(service.stats().shed, 0);
}

#[test]
fn repeated_worker_panics_trip_the_breaker_and_cooldown_reopens_it() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("breaker");
    let mut config = ServiceConfig::new(dir.join("store.log"));
    config.breaker_threshold = 2;
    config.breaker_cooldown_ms = 300;
    let service = MapperService::open(config).unwrap();

    assert!(ruby_failpoints::arm("server.worker", "panic"));
    for extent in [113, 97] {
        match service.handle(&query(extent)) {
            Err(ServeError::Search(text)) => assert!(text.contains("panicked"), "{text}"),
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }
    ruby_failpoints::disarm("server.worker");

    // Two consecutive failures tripped the breaker: cold work is shed
    // even though the fault is gone.
    assert!(service.breaker_open());
    let shed = service.handle(&query(131)).unwrap();
    assert_eq!(shed.source, ResponseSource::Shed);
    assert!(shed.retry_after_ms.is_some_and(|ms| ms <= 300));
    let stats = service.stats();
    assert_eq!(stats.breaker_trips, 1);

    // After the cooldown the breaker re-admits cold work, and a success
    // closes it fully.
    std::thread::sleep(std::time::Duration::from_millis(350));
    let recovered = service.handle(&query(131)).unwrap();
    assert_eq!(recovered.source, ResponseSource::Search);
    assert!(!service.breaker_open());
}

#[test]
fn tiny_deadlines_return_partial_best_so_far_and_persist_it() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("deadline");
    let service = MapperService::open(ServiceConfig::new(dir.join("store.log"))).unwrap();

    // Slow every evaluation so a quick-budget search over a space too
    // large to exhaust cannot finish inside the deadline.
    assert!(ruby_failpoints::arm("search.eval", "delay:2"));
    let mut q = query(113);
    q.workload = ruby_workload::suites::toy_gemm_100();
    q.deadline_ms = Some(150);
    let partial = service.handle(&q).unwrap();
    ruby_failpoints::disarm("search.eval");

    assert_eq!(partial.source, ResponseSource::Partial);
    assert_eq!(partial.stop_reason.as_deref(), Some("deadline"));
    assert!(partial.mapping.is_some());
    assert!(partial.cost.is_finite());
    let stats = service.stats();
    assert!(stats.partial >= 1, "stats: {stats:?}");
    assert!(stats.deadline_expired >= 1, "stats: {stats:?}");

    // The best-so-far was persisted: the repeat is a warm hit.
    let mut repeat = query(113);
    repeat.workload = ruby_workload::suites::toy_gemm_100();
    let warm = service.handle(&repeat).unwrap();
    assert_eq!(warm.source, ResponseSource::Store);
    assert_eq!(warm.mapping, partial.mapping);
}

#[test]
fn an_already_expired_deadline_degrades_or_fails_without_searching() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("expired");
    let service = MapperService::open(ServiceConfig::new(dir.join("store.log"))).unwrap();

    let mut q = query(113);
    q.deadline_ms = Some(0);
    match service.handle(&q) {
        Err(ServeError::Search(text)) => assert!(text.contains("deadline"), "{text}"),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    assert_eq!(service.stats().cold_searches, 0);

    // With a warm neighbor under another objective, the same refusal
    // degrades instead.
    let seeded = service.handle(&query(113)).unwrap();
    assert_eq!(seeded.source, ResponseSource::Search);
    let mut sibling = query(113);
    sibling.objective = ruby_search::Objective::Energy;
    sibling.deadline_ms = Some(0);
    let degraded = service.handle(&sibling).unwrap();
    assert!(degraded.degraded);
    assert_eq!(degraded.objective, "edp");
}

#[test]
fn per_client_caps_shed_a_flooding_client_but_not_others() {
    let _serial = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    ruby_failpoints::reset();
    let dir = test_dir("perclient");
    let mut config = ServiceConfig::new(dir.join("store.log"));
    config.workers = 1;
    config.queue_depth = 8;
    config.max_inflight_per_client = 1;
    let service = MapperService::open(config).unwrap();

    assert!(ruby_failpoints::arm("server.worker", "delay:300@1"));
    std::thread::scope(|scope| {
        let slow = scope.spawn(|| {
            let mut q = query(97);
            q.client = Some("flooder".to_owned());
            service.handle(&q)
        });
        std::thread::sleep(std::time::Duration::from_millis(60));

        // The same client's second in-flight cold query is refused even
        // though the queue has room…
        let mut q = query(131);
        q.client = Some("flooder".to_owned());
        let shed = service.handle(&q).unwrap();
        assert_eq!(shed.source, ResponseSource::Shed);

        // …while another client may still queue and run.
        let mut q = query(151);
        q.client = Some("patient".to_owned());
        let queued = service.handle(&q).unwrap();
        assert_eq!(queued.source, ResponseSource::Search);

        assert_eq!(slow.join().unwrap().unwrap().source, ResponseSource::Search);
    });
    ruby_failpoints::disarm("server.worker");
}
