//! End-to-end service behaviour: a repeated query is answered from the
//! store, bit-identical to the cold search that first solved it.

use std::path::PathBuf;

use ruby_arch::presets;
use ruby_mapspace::MapspaceKind;
use ruby_server::{
    wire, MapQuery, MapperService, QueryBudget, ResponseSource, ServiceConfig, API_SCHEMA,
};
use ruby_workload::ProblemShape;
use serde::Serialize;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruby-server-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn query() -> MapQuery {
    MapQuery {
        arch: presets::toy_linear(16, 1024),
        workload: ProblemShape::rank1("d", 113),
        mapspace: MapspaceKind::RubyS,
        objective: ruby_search::Objective::Edp,
        budget: QueryBudget::Quick,
        deadline_ms: None,
        client: None,
    }
}

#[test]
fn repeat_queries_warm_hit_bit_identically() {
    let dir = test_dir("warmcold");
    let service = MapperService::open(ServiceConfig::new(dir.join("store.log"))).unwrap();

    let cold = service.handle(&query()).unwrap();
    assert_eq!(cold.source, ResponseSource::Search);
    assert!(cold.cost.is_finite());

    let warm = service.handle(&query()).unwrap();
    assert_eq!(warm.source, ResponseSource::Store);

    // The acceptance bar: the warm answer is bit-identical to the cold
    // search's, mapping and cost both.
    assert_eq!(warm.mapping, cold.mapping);
    assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
    assert_eq!(warm.cycles, cold.cycles);
    assert_eq!(warm.key, cold.key);

    let stats = service.stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.store_hits, 1);
    assert_eq!(stats.cold_searches, 1);
}

#[test]
fn warm_hits_survive_a_service_restart() {
    let dir = test_dir("restart");
    let path = dir.join("store.log");
    let cold = {
        let service = MapperService::open(ServiceConfig::new(&path)).unwrap();
        service.handle(&query()).unwrap()
    };

    let service = MapperService::open(ServiceConfig::new(&path)).unwrap();
    let warm = service.handle(&query()).unwrap();
    assert_eq!(warm.source, ResponseSource::Store);
    assert_eq!(warm.mapping, cold.mapping);
    assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
}

#[test]
fn batches_shard_across_workers_in_query_order() {
    let dir = test_dir("batch");
    let mut config = ServiceConfig::new(dir.join("store.log"));
    config.workers = 3;
    let service = MapperService::open(config).unwrap();

    let mut other = query();
    other.workload = ProblemShape::rank1("d", 97);
    let batch = vec![query(), other.clone(), query()];
    let results = service.handle_batch(&batch);
    assert_eq!(results.len(), 3);
    let responses: Vec<_> = results.into_iter().map(|r| r.unwrap()).collect();

    // Same config twice in one batch: both must carry the same key and
    // the same mapping (one of them may race to be the cold one).
    assert_eq!(responses[0].key, responses[2].key);
    assert_eq!(responses[0].mapping, responses[2].mapping);
    assert_ne!(responses[0].key, responses[1].key);

    // After the batch, everything is warm.
    let warm = service.handle_batch(&batch);
    for result in warm {
        assert_eq!(result.unwrap().source, ResponseSource::Store);
    }
}

#[test]
fn query_serde_round_trips() {
    let q = query();
    let json = serde_json::to_string(&q.to_value()).unwrap();
    let back: MapQuery = serde_json::from_str(&json).unwrap();
    assert_eq!(back, q);
}

#[test]
fn wire_lines_answer_queries_and_tag_sources() {
    let dir = test_dir("wire");
    let service = MapperService::open(ServiceConfig::new(dir.join("store.log"))).unwrap();
    let line = serde_json::to_string(&query().to_value()).unwrap();

    let cold = wire::handle_line(&service, &line, None).unwrap();
    assert!(cold.contains("\"source\":\"search\""));
    let warm = wire::handle_line(&service, &line, None).unwrap();
    assert!(warm.contains("\"source\":\"store\""));

    // Responses parse back into the typed form, bit-identically.
    let cold_resp: ruby_server::MapResponse = serde_json::from_str(&cold).unwrap();
    let warm_resp: ruby_server::MapResponse = serde_json::from_str(&warm).unwrap();
    assert_eq!(warm_resp.mapping, cold_resp.mapping);
    assert_eq!(warm_resp.cost.to_bits(), cold_resp.cost.to_bits());

    // A batch line returns one response line per query, in order.
    let batch = format!("[{line},{line}]");
    let lines = wire::handle_line(&service, &batch, None).unwrap();
    assert_eq!(lines.lines().count(), 2);
    for response in lines.lines() {
        assert!(response.contains("\"source\":\"store\""));
    }

    // Blank lines are ignored; garbage gets a schema-tagged error.
    assert!(wire::handle_line(&service, "  ", None).is_none());
    let error = wire::handle_line(&service, "not json", None).unwrap();
    assert!(error.contains(&format!("\"schema\":{API_SCHEMA}")));
    assert!(error.contains("\"error\""));
}

#[test]
fn wrong_schema_queries_are_refused() {
    let q = query();
    let mut value = q.to_value();
    let serde::Value::Obj(ref mut fields) = value else {
        panic!("query must serialize as an object");
    };
    fields[0].1 = serde::Value::U64(API_SCHEMA + 1);
    let json = serde_json::to_string(&value).unwrap();
    assert!(serde_json::from_str::<MapQuery>(&json).is_err());
}
