//! Newline-delimited JSON protocol: one request per line, one response
//! line per query.
//!
//! A request line is either a single [`MapQuery`] object or an array of
//! them (a batch). Every response line is a [`MapResponse`] or an error
//! object `{"schema":…,"error":"…"}`; batch responses come back in
//! query order. The transport is whatever carries lines — `ruby serve`
//! speaks it over stdin/stdout and over a Unix socket.

use serde::{Deserialize, Serialize};

use crate::{MapQuery, MapperService, ServeError, API_SCHEMA};

/// Handles one protocol line; `None` for blank lines. The returned
/// string holds one response line per query (no trailing newline).
pub fn handle_line(service: &MapperService, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let value: serde::Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(err) => return Some(error_line(&format!("unparseable request: {err}"))),
    };
    match value {
        serde::Value::Arr(items) => {
            let mut queries = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match MapQuery::from_value(item) {
                    Ok(query) => queries.push(query),
                    Err(err) => return Some(error_line(&format!("batch entry {i}: {err}"))),
                }
            }
            let lines: Vec<String> = service
                .handle_batch(&queries)
                .into_iter()
                .map(|result| response_line(&result))
                .collect();
            Some(lines.join("\n"))
        }
        ref single @ serde::Value::Obj(_) => match MapQuery::from_value(single) {
            Ok(query) => Some(response_line(&service.handle(&query))),
            Err(err) => Some(error_line(&format!("bad query: {err}"))),
        },
        _ => Some(error_line("a request line must be an object or an array")),
    }
}

fn response_line(result: &Result<crate::MapResponse, ServeError>) -> String {
    match result {
        Ok(response) => match serde_json::to_string(&response.to_value()) {
            Ok(line) => line,
            Err(err) => error_line(&format!("unserializable response: {err}")),
        },
        Err(err) => error_line(&err.to_string()),
    }
}

fn error_line(message: &str) -> String {
    let value = serde::Value::Obj(vec![
        ("schema".to_owned(), serde::Value::U64(API_SCHEMA)),
        ("error".to_owned(), serde::Value::Str(message.to_owned())),
    ]);
    // justified: the two-field error object always serializes
    serde_json::to_string(&value).expect("error line must serialize")
}
