//! Newline-delimited JSON protocol: one request per line, one response
//! line per query.
//!
//! A request line is either a single [`MapQuery`] object or an array of
//! them (a batch). Every response line is a [`MapResponse`] or an error
//! object `{"schema":…,"error":"…"}`; batch responses come back in
//! query order. The transport is whatever carries lines — `ruby serve`
//! speaks it over stdin/stdout and over a Unix socket.
//!
//! Lines are bounded: a request longer than [`MAX_LINE_BYTES`] is
//! answered with a structured error instead of being buffered without
//! limit, and the rest of the oversized line is discarded as it
//! streams in. Transports should split their byte stream with
//! [`LineReader`], which enforces the cap incrementally and flushes an
//! unterminated final line (a peer that dropped mid-line) as a line of
//! its own so it still gets a terminal response.

use serde::{Deserialize, Serialize};

use crate::{MapQuery, MapperService, ServeError, API_SCHEMA};

/// The longest accepted request line (1 MiB), newline excluded.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Handles one protocol line; `None` for blank lines. The returned
/// string holds one response line per query (no trailing newline).
///
/// `client` is the transport's identity for the peer (e.g. a
/// per-connection id); it is stamped into any query that did not name a
/// `client` itself, so per-client admission caps see socket connections
/// individually.
pub fn handle_line(service: &MapperService, line: &str, client: Option<&str>) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if line.len() > MAX_LINE_BYTES {
        return Some(oversized_error_line(line.len()));
    }
    let value: serde::Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(err) => return Some(error_line(&format!("unparseable request: {err}"))),
    };
    let stamp = |mut query: MapQuery| {
        if query.client.is_none() {
            query.client = client.map(str::to_owned);
        }
        query
    };
    match value {
        serde::Value::Arr(items) => {
            let mut queries = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match MapQuery::from_value(item) {
                    Ok(query) => queries.push(stamp(query)),
                    Err(err) => return Some(error_line(&format!("batch entry {i}: {err}"))),
                }
            }
            let lines: Vec<String> = service
                .handle_batch(&queries)
                .into_iter()
                .map(|result| response_line(&result))
                .collect();
            Some(lines.join("\n"))
        }
        ref single @ serde::Value::Obj(_) => match MapQuery::from_value(single) {
            Ok(query) => Some(response_line(&service.handle(&stamp(query)))),
            Err(err) => Some(error_line(&format!("bad query: {err}"))),
        },
        _ => Some(error_line("a request line must be an object or an array")),
    }
}

/// The structured refusal for a line that blew the [`MAX_LINE_BYTES`]
/// cap. `bytes` is how much of it was seen (the tail may still have
/// been in flight when the transport started discarding).
pub fn oversized_error_line(bytes: usize) -> String {
    error_line(&format!(
        "request line of {bytes}+ bytes exceeds the {MAX_LINE_BYTES}-byte limit"
    ))
}

/// One unit a [`LineReader`] hands the transport.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete request line (newline stripped), within the cap.
    Line(String),
    /// A line that exceeded the cap; `bytes` counts what was seen and
    /// discarded. The transport should answer
    /// [`oversized_error_line`] and keep reading — the reader has
    /// already resynchronized on the next newline.
    Oversized {
        /// Bytes observed before the line ended (≥ the cap).
        bytes: usize,
    },
}

/// Incremental newline splitter with a hard per-line byte cap.
///
/// Feed it raw chunks as they arrive; it buffers at most the cap plus
/// one chunk, discarding the body of an oversized line instead of
/// growing without bound. At EOF, [`LineReader::finish`] flushes any
/// unterminated partial line so a peer that died mid-write still gets a
/// terminal response for what it sent.
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    /// Bytes dropped from the current (oversized) line.
    dropped: usize,
    discarding: bool,
    max: usize,
}

impl LineReader {
    /// A reader enforcing the protocol cap ([`MAX_LINE_BYTES`]).
    pub fn new() -> Self {
        Self::with_max(MAX_LINE_BYTES)
    }

    /// A reader with a custom cap (tests shrink it).
    pub fn with_max(max: usize) -> Self {
        LineReader {
            buf: Vec::new(),
            dropped: 0,
            discarding: false,
            max,
        }
    }

    /// Consumes one chunk, returning every line event it completed.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<LineEvent> {
        let mut events = Vec::new();
        for &byte in chunk {
            if byte == b'\n' {
                if self.discarding {
                    events.push(LineEvent::Oversized {
                        bytes: self.dropped,
                    });
                    self.discarding = false;
                    self.dropped = 0;
                } else {
                    events.push(LineEvent::Line(
                        String::from_utf8_lossy(&self.buf).into_owned(),
                    ));
                }
                self.buf.clear();
            } else if self.discarding {
                self.dropped += 1;
            } else {
                self.buf.push(byte);
                if self.buf.len() > self.max {
                    self.discarding = true;
                    self.dropped = self.buf.len();
                    self.buf.clear();
                }
            }
        }
        events
    }

    /// Flushes the unterminated final line at EOF, if any.
    pub fn finish(&mut self) -> Option<LineEvent> {
        if self.discarding {
            self.discarding = false;
            let bytes = self.dropped;
            self.dropped = 0;
            Some(LineEvent::Oversized { bytes })
        } else if self.buf.is_empty() {
            None
        } else {
            let line = String::from_utf8_lossy(&self.buf).into_owned();
            self.buf.clear();
            Some(LineEvent::Line(line))
        }
    }
}

impl Default for LineReader {
    fn default() -> Self {
        Self::new()
    }
}

fn response_line(result: &Result<crate::MapResponse, ServeError>) -> String {
    match result {
        Ok(response) => match serde_json::to_string(&response.to_value()) {
            Ok(line) => line,
            Err(err) => error_line(&format!("unserializable response: {err}")),
        },
        Err(err) => error_line(&err.to_string()),
    }
}

fn error_line(message: &str) -> String {
    let value = serde::Value::Obj(vec![
        ("schema".to_owned(), serde::Value::U64(API_SCHEMA)),
        ("error".to_owned(), serde::Value::Str(message.to_owned())),
    ]);
    // justified: the two-field error object always serializes
    serde_json::to_string(&value).expect("error line must serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_chunks_on_newlines() {
        let mut reader = LineReader::new();
        assert_eq!(
            reader.feed(b"{\"a\":1}\n{\"b\""),
            vec![LineEvent::Line("{\"a\":1}".to_owned())]
        );
        assert_eq!(
            reader.feed(b":2}\n"),
            vec![LineEvent::Line("{\"b\":2}".to_owned())]
        );
        assert_eq!(reader.finish(), None);
    }

    #[test]
    fn line_reader_flushes_a_mid_line_eof_as_a_line() {
        let mut reader = LineReader::new();
        assert!(reader.feed(b"{\"truncated\":").is_empty());
        assert_eq!(
            reader.finish(),
            Some(LineEvent::Line("{\"truncated\":".to_owned()))
        );
        assert_eq!(reader.finish(), None);
    }

    #[test]
    fn line_reader_caps_oversized_lines_and_resynchronizes() {
        let mut reader = LineReader::with_max(8);
        let mut events = reader.feed(b"0123456789abcdef\nok\n");
        assert_eq!(events.remove(0), LineEvent::Oversized { bytes: 16 });
        assert_eq!(events.remove(0), LineEvent::Line("ok".to_owned()));
        // An oversized line torn off by EOF still reports itself.
        assert!(reader.feed(b"0123456789abcdef").is_empty());
        assert_eq!(reader.finish(), Some(LineEvent::Oversized { bytes: 16 }));
    }

    #[test]
    fn oversized_error_lines_are_schema_valid() {
        let line = oversized_error_line(MAX_LINE_BYTES + 1);
        let value: serde::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value.field("schema").unwrap().as_u64().unwrap(), API_SCHEMA);
        assert!(value
            .field("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds"));
    }
}
