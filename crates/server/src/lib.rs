//! Mapper-as-a-service: the query API over store + engine.
//!
//! The workspace splits long-lived mapping service concerns into three
//! layers:
//!
//! - **Storage** (`ruby-store`): the durable best-mapping log, keyed by
//!   the canonical config fingerprint.
//! - **Engine** (`ruby-search`): one cold search, supervised and
//!   stoppable.
//! - **API** (this crate): schema-versioned [`MapQuery`] /
//!   [`MapResponse`] wire types, and a [`MapperService`] that answers
//!   warm queries from the store in microseconds and shards cold ones
//!   across a worker pool of engines.
//!
//! Wire format: every request and response object leads with
//! `"schema":` [`API_SCHEMA`], so both sides can detect format
//! generations the way all other Ruby artifacts do. The `ruby serve`
//! subcommand speaks these types as newline-delimited JSON; see
//! [`wire::handle_line`].

mod service;
pub mod wire;

use ruby_arch::Architecture;
use ruby_mapping::Mapping;
use ruby_mapspace::MapspaceKind;
use ruby_search::Objective;
use ruby_workload::ProblemShape;

pub use service::{MapperService, ServiceConfig, ServiceStats};

/// Wire schema version of [`MapQuery`] and [`MapResponse`].
///
/// Version 2 added the overload/failure surface: `deadline_ms` and
/// `client` on queries; `partial`/`shed` sources, `degraded`,
/// `retry_after_ms`, `stop_reason`, and a nullable `mapping` on
/// responses.
pub const API_SCHEMA: u64 = 2;

/// How hard a cold search may look, as a named tier (the CLI's
/// `--budget` tiers, so `ruby search` and `ruby query` agree on what
/// "quick" means).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryBudget {
    /// 3k evaluations, 400-failure termination.
    Quick,
    /// 15k evaluations, 1.5k-failure termination.
    #[default]
    Medium,
    /// 60k evaluations, 3k-failure termination.
    Full,
}

impl QueryBudget {
    /// The wire spelling.
    pub const fn name(self) -> &'static str {
        match self {
            QueryBudget::Quick => "quick",
            QueryBudget::Medium => "medium",
            QueryBudget::Full => "full",
        }
    }

    /// `(max_evaluations, termination)` for the search config.
    pub const fn params(self) -> (i64, i64) {
        match self {
            QueryBudget::Quick => (3_000, 400),
            QueryBudget::Medium => (15_000, 1_500),
            QueryBudget::Full => (60_000, 3_000),
        }
    }
}

impl std::str::FromStr for QueryBudget {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, ServeError> {
        match s {
            "quick" => Ok(QueryBudget::Quick),
            "medium" => Ok(QueryBudget::Medium),
            "full" => Ok(QueryBudget::Full),
            other => Err(ServeError::Query(format!(
                "unknown budget '{other}' (quick|medium|full)"
            ))),
        }
    }
}

impl std::fmt::Display for QueryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One mapping query: the config to map and how hard to look.
///
/// Identity (for the store key) is everything except `budget`: a
/// deeper search for a config some earlier quick query already solved
/// still warm-hits, and only replaces the stored record if it finds
/// something strictly better.
#[derive(Debug, Clone, PartialEq)]
pub struct MapQuery {
    /// The accelerator to map onto.
    pub arch: Architecture,
    /// The workload to map.
    pub workload: ProblemShape,
    /// Which factorization space to search.
    pub mapspace: MapspaceKind,
    /// The scalar cost to minimize.
    pub objective: Objective,
    /// The search budget tier for a cold query.
    pub budget: QueryBudget,
    /// Wall-clock deadline for answering, in milliseconds from receipt.
    /// A cold search that runs out of deadline drains through the
    /// engine's stop machinery and answers with its best-so-far mapping
    /// marked `source:"partial"`; `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Client identity for per-client in-flight caps; `None` falls back
    /// to the transport's identity (one per connection).
    pub client: Option<String>,
}

impl serde::Serialize for MapQuery {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(API_SCHEMA)),
            ("arch".to_owned(), self.arch.to_value()),
            ("workload".to_owned(), self.workload.to_value()),
            ("mapspace".to_owned(), self.mapspace.to_value()),
            (
                "objective".to_owned(),
                serde::Value::Str(self.objective.name().to_owned()),
            ),
            (
                "budget".to_owned(),
                serde::Value::Str(self.budget.name().to_owned()),
            ),
            (
                "deadline_ms".to_owned(),
                match self.deadline_ms {
                    Some(ms) => serde::Value::U64(ms),
                    None => serde::Value::Null,
                },
            ),
            (
                "client".to_owned(),
                match &self.client {
                    Some(client) => serde::Value::Str(client.clone()),
                    None => serde::Value::Null,
                },
            ),
        ])
    }
}

impl serde::Deserialize for MapQuery {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let schema = value.field("schema")?.as_u64()?;
        if schema != API_SCHEMA {
            return Err(serde::Error::custom(format!(
                "query schema {schema} (this server speaks {API_SCHEMA})"
            )));
        }
        let objective: Objective = value
            .field("objective")?
            .as_str()?
            .parse()
            .map_err(|e| serde::Error::custom(format!("{e}")))?;
        let budget: QueryBudget = value
            .field("budget")?
            .as_str()?
            .parse()
            .map_err(|e| serde::Error::custom(format!("{e}")))?;
        let deadline_ms = match value.field("deadline_ms")? {
            serde::Value::Null => None,
            ms => Some(ms.as_u64()?),
        };
        let client = match value.field("client")? {
            serde::Value::Null => None,
            name => Some(name.as_str()?.to_owned()),
        };
        Ok(MapQuery {
            arch: serde::Deserialize::from_value(value.field("arch")?)?,
            workload: serde::Deserialize::from_value(value.field("workload")?)?,
            mapspace: serde::Deserialize::from_value(value.field("mapspace")?)?,
            objective,
            budget,
            deadline_ms,
            client,
        })
    }
}

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Warm hit: answered from the durable store.
    Store,
    /// Cold miss: a fresh search produced (and stored) the mapping.
    Search,
    /// Cold search cut short (deadline, shutdown, worker failures);
    /// the answer is the best-so-far mapping, still stored.
    Partial,
    /// Load shed: the cold queue was full (or the breaker open) and the
    /// query was not attempted; retry after `retry_after_ms`.
    Shed,
}

impl ResponseSource {
    /// The wire spelling.
    pub const fn name(self) -> &'static str {
        match self {
            ResponseSource::Store => "store",
            ResponseSource::Search => "search",
            ResponseSource::Partial => "partial",
            ResponseSource::Shed => "shed",
        }
    }
}

/// One answered query: the best known mapping for the config, or a
/// load-shedding verdict when the service would not attempt it.
#[derive(Debug, Clone, PartialEq)]
pub struct MapResponse {
    /// Warm (`store`), cold (`search`), truncated cold (`partial`), or
    /// load-shed (`shed`).
    pub source: ResponseSource,
    /// The canonical config fingerprint, as 16 hex digits.
    pub key: u64,
    /// The objective the cost is scored under. For a `degraded` answer
    /// this is the *stored* record's objective, not the query's.
    pub objective: String,
    /// Scalar cost of `mapping` under `objective` (0 for `shed`).
    pub cost: f64,
    /// Modeled cycle count of `mapping` (0 for `shed`).
    pub cycles: u64,
    /// Modeled total energy of `mapping` (pJ; 0 for `shed`).
    pub energy: f64,
    /// Evaluations spent by the search that produced the mapping.
    pub evaluations: u64,
    /// Wall-clock time this service spent answering, in microseconds.
    pub micros: u64,
    /// True when the answer is a nearest-warm fallback: the fingerprint
    /// matches the query modulo objective, served because cold work was
    /// saturated or the breaker was open.
    pub degraded: bool,
    /// For `shed` responses: how long the client should wait before
    /// retrying.
    pub retry_after_ms: Option<u64>,
    /// For `partial` responses: why the search stopped early
    /// (`deadline`, `stop-requested`, `worker-failures`).
    pub stop_reason: Option<String>,
    /// The best known mapping itself; `None` only for `shed`.
    pub mapping: Option<Mapping>,
}

impl serde::Serialize for MapResponse {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(API_SCHEMA)),
            (
                "source".to_owned(),
                serde::Value::Str(self.source.name().to_owned()),
            ),
            (
                "key".to_owned(),
                serde::Value::Str(format!("{:016x}", self.key)),
            ),
            (
                "objective".to_owned(),
                serde::Value::Str(self.objective.clone()),
            ),
            ("cost".to_owned(), serde::Value::F64(self.cost)),
            ("cycles".to_owned(), serde::Value::U64(self.cycles)),
            ("energy".to_owned(), serde::Value::F64(self.energy)),
            (
                "evaluations".to_owned(),
                serde::Value::U64(self.evaluations),
            ),
            ("micros".to_owned(), serde::Value::U64(self.micros)),
            ("degraded".to_owned(), serde::Value::Bool(self.degraded)),
            (
                "retry_after_ms".to_owned(),
                match self.retry_after_ms {
                    Some(ms) => serde::Value::U64(ms),
                    None => serde::Value::Null,
                },
            ),
            (
                "stop_reason".to_owned(),
                match &self.stop_reason {
                    Some(reason) => serde::Value::Str(reason.clone()),
                    None => serde::Value::Null,
                },
            ),
            (
                "mapping".to_owned(),
                match &self.mapping {
                    Some(mapping) => mapping.to_value(),
                    None => serde::Value::Null,
                },
            ),
        ])
    }
}

impl serde::Deserialize for MapResponse {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let schema = value.field("schema")?.as_u64()?;
        if schema != API_SCHEMA {
            return Err(serde::Error::custom(format!(
                "response schema {schema} (this client speaks {API_SCHEMA})"
            )));
        }
        let source = match value.field("source")?.as_str()? {
            "store" => ResponseSource::Store,
            "search" => ResponseSource::Search,
            "partial" => ResponseSource::Partial,
            "shed" => ResponseSource::Shed,
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown response source '{other}'"
                )))
            }
        };
        let key = u64::from_str_radix(value.field("key")?.as_str()?, 16)
            .map_err(|e| serde::Error::custom(format!("bad response key: {e}")))?;
        let retry_after_ms = match value.field("retry_after_ms")? {
            serde::Value::Null => None,
            ms => Some(ms.as_u64()?),
        };
        let stop_reason = match value.field("stop_reason")? {
            serde::Value::Null => None,
            reason => Some(reason.as_str()?.to_owned()),
        };
        let mapping = match value.field("mapping")? {
            serde::Value::Null => None,
            mapping => Some(serde::Deserialize::from_value(mapping)?),
        };
        Ok(MapResponse {
            source,
            key,
            objective: value.field("objective")?.as_str()?.to_owned(),
            cost: value.field("cost")?.as_f64()?,
            cycles: value.field("cycles")?.as_u64()?,
            energy: value.field("energy")?.as_f64()?,
            evaluations: value.field("evaluations")?.as_u64()?,
            micros: value.field("micros")?.as_u64()?,
            degraded: value.field("degraded")?.as_bool()?,
            retry_after_ms,
            stop_reason,
            mapping,
        })
    }
}

/// Why a query could not be answered.
#[derive(Debug)]
pub enum ServeError {
    /// The query itself is malformed (bad budget, bad objective, …).
    Query(String),
    /// The cold search failed or found no valid mapping.
    Search(String),
    /// The store refused the lookup or the write-back.
    Store(ruby_store::StoreError),
    /// The service is shutting down; the query was not attempted.
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Query(what) => write!(f, "bad query: {what}"),
            ServeError::Search(what) => write!(f, "search failed: {what}"),
            ServeError::Store(err) => write!(f, "store: {err}"),
            ServeError::Stopped => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ruby_store::StoreError> for ServeError {
    fn from(err: ruby_store::StoreError) -> Self {
        ServeError::Store(err)
    }
}
