//! The [`MapperService`]: warm hits from the store, cold queries
//! through a supervised pool of search engines.
//!
//! Warm path: fingerprint the query, look it up in the store under a
//! short-lived lock, clone the record out — microseconds, no search.
//! The warm path is never queued, shed, or breaker-gated: an overloaded
//! service keeps answering known configs.
//!
//! Cold path: admission first — at most `workers` cold searches run at
//! once, at most `queue_depth` more wait, and beyond that the query is
//! *shed* (`source:"shed"` with `retry_after_ms`) rather than queued
//! unboundedly; per-client in-flight caps keep one flooding client from
//! starving the rest. An admitted query builds the mapspace, runs one
//! [`Engine`] (single-threaded per query by default, so repeated cold
//! runs of the same query are bit-identical; batches get their
//! parallelism *across* queries), then writes the winner back to the
//! store so every later repeat is warm.
//!
//! Deadlines: `MapQuery::deadline_ms` bounds the whole cold path,
//! queueing included. A search that runs out of deadline drains through
//! the engine's cooperative stop machinery (the same path the
//! [`StopToken`] uses) and still answers — best-so-far, marked
//! `source:"partial"` with its `stop_reason` — instead of blocking the
//! pool.
//!
//! Degradation: when cold work cannot run (saturation or an open
//! circuit breaker), the service first looks for a warm record whose
//! fingerprint matches the query *modulo objective* and answers with it
//! marked `degraded:true`; only when no such neighbor exists does it
//! shed. Repeated cold-path failures trip the breaker
//! (`breaker_threshold` consecutive failures → cold work shed for
//! `breaker_cooldown_ms`), containing a crash loop while warm hits keep
//! flowing.
//!
//! Supervision: a panic anywhere in a cold query (mapspace
//! construction, enumeration, the model) is caught and returned as a
//! [`ServeError::Search`] for that query alone; the pool and the other
//! queries keep going — the same containment contract the engine's own
//! worker pool gives individual evaluations.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ruby_mapspace::{Constraints, Mapspace};
use ruby_search::{Engine, Objective, SearchConfig, SearchStrategy, StopToken};
use ruby_store::{MappingStore, ScrubReport, StoreRecord};
use ruby_telemetry::{LazyCounter, ProgressSink, SearchSnapshot};

use crate::{MapQuery, MapResponse, ResponseSource, ServeError};

static SHED: LazyCounter = LazyCounter::new("serve.shed");
static DEGRADED: LazyCounter = LazyCounter::new("serve.degraded");
static PARTIAL: LazyCounter = LazyCounter::new("serve.partial");
static DEADLINE_EXPIRED: LazyCounter = LazyCounter::new("serve.deadline_expired");
static BREAKER_OPEN: LazyCounter = LazyCounter::new("serve.breaker_open");

/// How long a queued cold query sleeps between slot polls; also bounds
/// how stale its stop/deadline checks can get.
const QUEUE_POLL: Duration = Duration::from_millis(20);

/// How a [`MapperService`] is wired.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The durable store log.
    pub store_path: PathBuf,
    /// Cold-search concurrency: the worker-pool width for
    /// [`MapperService::handle_batch`] and the number of cold queries
    /// admitted to run at once.
    pub workers: usize,
    /// Engine threads per cold query; 1 (the default) keeps every cold
    /// search bit-deterministic and lets batches parallelize across
    /// queries instead.
    pub threads_per_query: usize,
    /// Seed for cold searches.
    pub seed: u64,
    /// When set, every cold query checkpoints into this directory
    /// (file name = the store key) and resumes from it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint stride in evaluations.
    pub checkpoint_every: u64,
    /// Cold queries allowed to wait for a worker slot beyond the
    /// `workers` already running; the next one is shed, not queued.
    pub queue_depth: usize,
    /// Cold queries (running + waiting) one client may have in flight;
    /// 0 disables the cap. Applies only to identified clients (a
    /// query's `client` field or the transport's per-connection id).
    pub max_inflight_per_client: usize,
    /// Consecutive cold-path failures that trip the circuit breaker.
    pub breaker_threshold: u64,
    /// How long a tripped breaker sheds cold work before re-admitting.
    pub breaker_cooldown_ms: u64,
    /// `retry_after_ms` suggested to shed clients.
    pub retry_after_ms: u64,
    /// Scrub the store log on open: CRC-verify every frame, quarantine
    /// damaged ones to the `.quarantine` sidecar, and recover intact
    /// records *past* the damage (a plain open truncates at the first
    /// damaged frame instead).
    pub scrub_on_open: bool,
}

impl ServiceConfig {
    /// Defaults: 2 workers, deterministic single-threaded cold
    /// searches, no checkpoints, a 16-deep cold queue, 8 in-flight cold
    /// queries per client, a 5-failure breaker with a 1 s cooldown, and
    /// scrub-on-open.
    pub fn new(store_path: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            store_path: store_path.into(),
            workers: 2,
            threads_per_query: 1,
            seed: 1,
            checkpoint_dir: None,
            checkpoint_every: 10_000,
            queue_depth: 16,
            max_inflight_per_client: 8,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            retry_after_ms: 250,
            scrub_on_open: true,
        }
    }
}

/// Service counters, for the shutdown summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered (errors included).
    pub queries: u64,
    /// Answered from the store.
    pub store_hits: u64,
    /// Answered by a fresh search.
    pub cold_searches: u64,
    /// Load-shed (`source:"shed"`) responses.
    pub shed: u64,
    /// Nearest-warm fallback (`degraded:true`) responses.
    pub degraded: u64,
    /// Truncated cold searches answered best-so-far
    /// (`source:"partial"`).
    pub partial: u64,
    /// Queries whose wall-clock deadline expired (in queue or
    /// mid-search).
    pub deadline_expired: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
}

/// Cold-slot admission verdict.
enum Admit {
    /// A worker slot is held; release via [`ColdSlot`].
    Run,
    /// Queue full (or per-client cap hit): shed, don't wait.
    Saturated,
    /// The query's deadline expired while it waited.
    Expired,
    /// The service is draining.
    Stopped,
}

/// Running/waiting cold-query accounting behind the admission gate.
struct Slots {
    running: usize,
    waiting: usize,
    per_client: HashMap<String, usize>,
}

struct Admission {
    slots: Mutex<Slots>,
    cv: Condvar,
}

/// Circuit-breaker state: consecutive failures and the open-until
/// horizon.
struct BreakerState {
    consecutive_failures: u64,
    open_until: Option<Instant>,
}

/// The mapper service: a [`MappingStore`] fronted by a pool of engines.
pub struct MapperService {
    config: ServiceConfig,
    store: Mutex<MappingStore>,
    token: StopToken,
    progress: Option<Arc<Mutex<Box<dyn ProgressSink>>>>,
    admission: Admission,
    breaker: Mutex<BreakerState>,
    scrub: ScrubReport,
    queries: AtomicU64,
    store_hits: AtomicU64,
    cold_searches: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    partial: AtomicU64,
    deadline_expired: AtomicU64,
    breaker_trips: AtomicU64,
}

impl MapperService {
    /// Opens the service over the store at `config.store_path`. With
    /// `scrub_on_open` (the default) the whole log is CRC-verified and
    /// damaged frames are quarantined to the sidecar
    /// ([`MappingStore::open_scrubbed`]); otherwise recovery is the
    /// plain torn-tail truncation of [`MappingStore::open`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] when the log cannot be opened.
    pub fn open(config: ServiceConfig) -> Result<Self, ServeError> {
        let (store, scrub) = if config.scrub_on_open {
            MappingStore::open_scrubbed(&config.store_path)?
        } else {
            (
                MappingStore::open(&config.store_path)?,
                ScrubReport::default(),
            )
        };
        Ok(MapperService {
            config,
            store: Mutex::new(store),
            token: StopToken::new(),
            progress: None,
            admission: Admission {
                slots: Mutex::new(Slots {
                    running: 0,
                    waiting: 0,
                    per_client: HashMap::new(),
                }),
                cv: Condvar::new(),
            },
            breaker: Mutex::new(BreakerState {
                consecutive_failures: 0,
                open_until: None,
            }),
            scrub,
            queries: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            cold_searches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            partial: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
        })
    }

    /// Streams every cold search's progress into `sink` (snapshots,
    /// summaries and metrics interleave across workers; each record
    /// carries its own identity).
    pub fn with_progress(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.progress = Some(Arc::new(Mutex::new(sink)));
        self
    }

    /// A clone of the service's stop token: trip it (e.g. from a signal
    /// handler) and in-flight cold searches drain, while queued batch
    /// entries come back [`ServeError::Stopped`].
    pub fn stop_token(&self) -> StopToken {
        self.token.clone()
    }

    /// Service counters so far.
    pub fn stats(&self) -> ServiceStats {
        // ordering: Relaxed — independent monotonic counters, read for reporting only.
        let count = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        ServiceStats {
            queries: count(&self.queries),
            store_hits: count(&self.store_hits),
            cold_searches: count(&self.cold_searches),
            shed: count(&self.shed),
            degraded: count(&self.degraded),
            partial: count(&self.partial),
            deadline_expired: count(&self.deadline_expired),
            breaker_trips: count(&self.breaker_trips),
        }
    }

    /// What the open-time scrub found (all-zero when `scrub_on_open`
    /// was off or the log was clean).
    pub fn scrub_report(&self) -> ScrubReport {
        self.scrub
    }

    /// Whether the circuit breaker is currently shedding cold work.
    pub fn breaker_open(&self) -> bool {
        match self.breaker.lock() {
            Ok(state) => state.open_until.is_some_and(|until| Instant::now() < until),
            Err(_) => false,
        }
    }

    /// Live entries in the underlying store.
    pub fn store_len(&self) -> usize {
        match self.store.lock() {
            Ok(store) => store.len(),
            Err(_) => 0,
        }
    }

    /// Compacts the underlying store log (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] when the rewrite fails; the
    /// previous log generation survives.
    pub fn compact(&self) -> Result<(), ServeError> {
        let mut store = self.lock_store()?;
        store.compact()?;
        Ok(())
    }

    /// Answers one query: warm from the store if its fingerprint is
    /// known, otherwise by a fresh supervised search whose winner is
    /// persisted before the response is returned. Under overload the
    /// cold path degrades (see the module docs): `partial`, degraded
    /// warm fallbacks, and `shed` responses are `Ok` — they are
    /// terminal protocol answers, not failures.
    ///
    /// # Errors
    ///
    /// [`ServeError::Search`] when the cold search panics or finds no
    /// valid mapping; [`ServeError::Store`] when the store refuses the
    /// lookup or write-back; [`ServeError::Stopped`] for cold work
    /// during shutdown.
    pub fn handle(&self, query: &MapQuery) -> Result<MapResponse, ServeError> {
        let start = Instant::now();
        // ordering: Relaxed — independent monotonic counter.
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = self.fingerprint(query, query.objective);

        {
            let store = self.lock_store()?;
            if let Some(record) = store.get(key) {
                // ordering: Relaxed — independent monotonic counter.
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(respond(ResponseSource::Store, key, record.clone(), start));
            }
        }

        // The whole cold path is contained: a panic anywhere inside it
        // (admission, engine, store write-back) fails this query alone.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.cold_path(query, key, start)
        }))
        .unwrap_or_else(|panic| {
            Err(ServeError::Search(format!(
                "worker panicked: {}",
                panic_text(&panic)
            )))
        });
        if let Err(err) = &result {
            if !matches!(err, ServeError::Stopped) {
                self.record_breaker_failure();
            }
        }
        result
    }

    /// Answers a batch, sharding cold queries across the worker pool.
    /// Results come back in query order; each entry fails or succeeds
    /// on its own.
    pub fn handle_batch(&self, queries: &[MapQuery]) -> Vec<Result<MapResponse, ServeError>> {
        let slots: Vec<Mutex<Option<Result<MapResponse, ServeError>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.config.workers.max(1).min(queries.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ordering: Relaxed — the work index carries no other state.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else {
                        break;
                    };
                    let result = if self.token.stop_requested() {
                        Err(ServeError::Stopped)
                    } else {
                        self.handle(query)
                    };
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| match slot.into_inner() {
                Ok(Some(result)) => result,
                _ => Err(ServeError::Search("worker died mid-query".to_owned())),
            })
            .collect()
    }

    /// The cold pipeline: breaker gate, admission, supervised search,
    /// durable write-back.
    fn cold_path(
        &self,
        query: &MapQuery,
        key: u64,
        start: Instant,
    ) -> Result<MapResponse, ServeError> {
        if self.token.stop_requested() {
            return Err(ServeError::Stopped);
        }
        let deadline = query
            .deadline_ms
            .map(|ms| start + Duration::from_millis(ms));
        if expired(deadline) {
            return self.deadline_expired_answer(query, key, start);
        }
        match ruby_failpoints::hit("server.queue") {
            ruby_failpoints::Action::Panic => {
                // justified: fault injection — contained by the cold-path catch_unwind
                panic!("failpoint server.queue");
            }
            ruby_failpoints::Action::Err => {
                return Ok(self.fallback(query, key, start, self.config.retry_after_ms));
            }
            _ => {}
        }
        if let Some(retry_after_ms) = self.breaker_open_for() {
            BREAKER_OPEN.inc();
            return Ok(self.fallback(query, key, start, retry_after_ms));
        }
        let client = query.client.as_deref();
        match self.acquire_slot(client, deadline) {
            Admit::Run => {}
            Admit::Saturated => {
                return Ok(self.fallback(query, key, start, self.config.retry_after_ms))
            }
            Admit::Expired => return self.deadline_expired_answer(query, key, start),
            Admit::Stopped => return Err(ServeError::Stopped),
        }
        let slot = ColdSlot {
            service: self,
            client,
        };
        // ordering: Relaxed — independent monotonic counter.
        self.cold_searches.fetch_add(1, Ordering::Relaxed);
        let result = self.cold_search(query, key, deadline);
        drop(slot);
        let (record, stop_reason) = result?;
        self.record_breaker_success();
        let record = {
            let mut store = self.lock_store()?;
            store.put(record.clone())?;
            // An improving record may have landed between our lookup
            // and the write-back; always answer with the store's view
            // so repeats of this query are bit-identical to it.
            // justified: the key was either present or just written above
            store
                .get(key)
                .cloned()
                .expect("record just written vanished")
        };
        match stop_reason {
            Some(reason) => {
                // ordering: Relaxed — independent monotonic counter.
                self.partial.fetch_add(1, Ordering::Relaxed);
                PARTIAL.inc();
                if reason == "deadline" {
                    // ordering: Relaxed — independent monotonic counter.
                    self.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    DEADLINE_EXPIRED.inc();
                }
                let mut response = respond(ResponseSource::Partial, key, record, start);
                response.stop_reason = Some(reason);
                Ok(response)
            }
            None => Ok(respond(ResponseSource::Search, key, record, start)),
        }
    }

    /// Admission: take a worker slot, wait in the bounded queue for
    /// one, or refuse. The queue is polled so shutdown and deadlines
    /// cut waits short.
    fn acquire_slot(&self, client: Option<&str>, deadline: Option<Instant>) -> Admit {
        let Ok(mut slots) = self.admission.slots.lock() else {
            return Admit::Saturated;
        };
        let cap = self.config.max_inflight_per_client;
        if let Some(client) = client {
            if cap > 0 && slots.per_client.get(client).copied().unwrap_or(0) >= cap {
                return Admit::Saturated;
            }
        }
        if slots.running >= self.config.workers.max(1) && slots.waiting >= self.config.queue_depth {
            return Admit::Saturated;
        }
        if let Some(client) = client {
            *slots.per_client.entry(client.to_owned()).or_insert(0) += 1;
        }
        let release_client = |slots: &mut Slots| {
            if let Some(client) = client {
                if let Some(count) = slots.per_client.get_mut(client) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        slots.per_client.remove(client);
                    }
                }
            }
        };
        if slots.running < self.config.workers.max(1) {
            slots.running += 1;
            return Admit::Run;
        }
        slots.waiting += 1;
        loop {
            let (guard, _timeout) = match self.admission.cv.wait_timeout(slots, QUEUE_POLL) {
                Ok(pair) => pair,
                Err(_) => {
                    // justified: poisoned admission lock — refuse rather than abort
                    return Admit::Saturated;
                }
            };
            slots = guard;
            if self.token.stop_requested() {
                slots.waiting -= 1;
                release_client(&mut slots);
                return Admit::Stopped;
            }
            if expired(deadline) {
                slots.waiting -= 1;
                release_client(&mut slots);
                return Admit::Expired;
            }
            if slots.running < self.config.workers.max(1) {
                slots.waiting -= 1;
                slots.running += 1;
                return Admit::Run;
            }
        }
    }

    /// The degraded/shed fallback for cold work that cannot run: a warm
    /// record for the same config under another objective when one
    /// exists, a `shed` verdict otherwise.
    fn fallback(
        &self,
        query: &MapQuery,
        key: u64,
        start: Instant,
        retry_after_ms: u64,
    ) -> MapResponse {
        if let Some(response) = self.degraded_answer(query, start) {
            return response;
        }
        // ordering: Relaxed — independent monotonic counter.
        self.shed.fetch_add(1, Ordering::Relaxed);
        SHED.inc();
        MapResponse {
            source: ResponseSource::Shed,
            key,
            objective: query.objective.name().to_owned(),
            cost: 0.0,
            cycles: 0,
            energy: 0.0,
            evaluations: 0,
            micros: start.elapsed().as_micros() as u64,
            degraded: false,
            retry_after_ms: Some(retry_after_ms.max(1)),
            stop_reason: None,
            mapping: None,
        }
    }

    /// The nearest-warm lookup: the same fingerprint modulo objective.
    fn degraded_answer(&self, query: &MapQuery, start: Instant) -> Option<MapResponse> {
        let store = self.store.lock().ok()?;
        for objective in [Objective::Edp, Objective::Energy, Objective::Delay] {
            if objective == query.objective {
                continue;
            }
            let alt_key = self.fingerprint(query, objective);
            if let Some(record) = store.get(alt_key) {
                // ordering: Relaxed — independent monotonic counter.
                self.degraded.fetch_add(1, Ordering::Relaxed);
                DEGRADED.inc();
                let mut response = respond(ResponseSource::Store, alt_key, record.clone(), start);
                response.degraded = true;
                return Some(response);
            }
        }
        None
    }

    /// A query whose deadline expired before any search ran: count it,
    /// degrade if a warm neighbor exists, otherwise fail it.
    fn deadline_expired_answer(
        &self,
        query: &MapQuery,
        _key: u64,
        start: Instant,
    ) -> Result<MapResponse, ServeError> {
        // ordering: Relaxed — independent monotonic counter.
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        DEADLINE_EXPIRED.inc();
        if let Some(response) = self.degraded_answer(query, start) {
            return Ok(response);
        }
        Err(ServeError::Search(
            "deadline expired before the search could start".to_owned(),
        ))
    }

    /// Remaining cooldown when the breaker is open, `None` when closed.
    fn breaker_open_for(&self) -> Option<u64> {
        let state = self.breaker.lock().ok()?;
        let until = state.open_until?;
        let now = Instant::now();
        if now < until {
            Some((until - now).as_millis().max(1) as u64)
        } else {
            None
        }
    }

    fn record_breaker_failure(&self) {
        let Ok(mut state) = self.breaker.lock() else {
            return;
        };
        state.consecutive_failures += 1;
        if state.consecutive_failures >= self.config.breaker_threshold.max(1) {
            let now = Instant::now();
            let was_open = state.open_until.is_some_and(|until| now < until);
            state.open_until = Some(now + Duration::from_millis(self.config.breaker_cooldown_ms));
            if !was_open {
                // ordering: Relaxed — independent monotonic counter.
                self.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn record_breaker_success(&self) {
        if let Ok(mut state) = self.breaker.lock() {
            state.consecutive_failures = 0;
            state.open_until = None;
        }
    }

    fn fingerprint(&self, query: &MapQuery, objective: Objective) -> u64 {
        let constraints = Constraints::unconstrained(query.arch.num_levels());
        ruby_store::config_key(
            &query.arch,
            &query.workload,
            &constraints,
            query.mapspace,
            objective.name(),
        )
    }

    /// One supervised cold search: any panic becomes a per-query error.
    /// Returns the record and, for a truncated search, its stop reason.
    fn cold_search(
        &self,
        query: &MapQuery,
        key: u64,
        deadline: Option<Instant>,
    ) -> Result<(StoreRecord, Option<String>), ServeError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_engine(query, key, deadline)
        }))
        .map_err(|panic| ServeError::Search(format!("worker panicked: {}", panic_text(&panic))))?
    }

    fn run_engine(
        &self,
        query: &MapQuery,
        key: u64,
        deadline: Option<Instant>,
    ) -> Result<(StoreRecord, Option<String>), ServeError> {
        match ruby_failpoints::hit("server.worker") {
            ruby_failpoints::Action::Panic => {
                // justified: fault injection — contained by cold_search's catch_unwind
                panic!("failpoint server.worker");
            }
            ruby_failpoints::Action::Err => {
                return Err(ServeError::Search(
                    "failpoint server.worker: injected error".to_owned(),
                ));
            }
            _ => {}
        }
        let space = Mapspace::new(query.arch.clone(), query.workload.clone(), query.mapspace);
        let (max_evaluations, termination) = query.budget.params();
        let mut builder = SearchConfig::builder()
            .seed(self.config.seed)
            .max_evaluations(max_evaluations)
            .termination(termination)
            .threads(self.config.threads_per_query.max(1))
            .objective(query.objective)
            .strategy(SearchStrategy::Random)
            .prune(true);
        if let Some(deadline) = deadline {
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .as_secs_f64()
                .max(0.001);
            builder = builder.max_seconds(remaining);
        }
        let config = builder
            .build()
            .map_err(|e| ServeError::Query(e.to_string()))?;
        let mut engine = Engine::new(&space)
            .with_config(config)
            .with_stop_token(self.token.clone());
        if let Some(dir) = &self.config.checkpoint_dir {
            engine = engine
                .with_checkpoint(
                    dir.join(format!("{key:016x}.ckpt")),
                    self.config.checkpoint_every,
                )
                .resume();
        }
        if let Some(progress) = &self.progress {
            engine = engine.with_progress(Box::new(SharedSink {
                inner: Arc::clone(progress),
            }));
        }
        let outcome = engine
            .try_run()
            .map_err(|e| ServeError::Search(e.to_string()))?;
        let best = outcome.best.ok_or_else(|| {
            ServeError::Search(format!(
                "no valid {} mapping in {} evaluations",
                query.mapspace.name(),
                outcome.evaluations
            ))
        })?;
        let stop_reason = if outcome.stopped_early {
            outcome.stop_reason.clone()
        } else {
            None
        };
        Ok((
            StoreRecord {
                key,
                objective: query.objective.name().to_owned(),
                cost: best.cost,
                evaluations: outcome.evaluations,
                mapping: best.mapping,
                report: best.report,
            },
            stop_reason,
        ))
    }

    fn release_slot(&self, client: Option<&str>) {
        if let Ok(mut slots) = self.admission.slots.lock() {
            slots.running = slots.running.saturating_sub(1);
            if let Some(client) = client {
                if let Some(count) = slots.per_client.get_mut(client) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        slots.per_client.remove(client);
                    }
                }
            }
        }
        self.admission.cv.notify_one();
    }

    fn lock_store(&self) -> Result<std::sync::MutexGuard<'_, MappingStore>, ServeError> {
        self.store
            .lock()
            .map_err(|_| ServeError::Search("store mutex poisoned".to_owned()))
    }
}

/// RAII release of an admitted cold slot: runs on every exit path out
/// of the search, panics included.
struct ColdSlot<'a> {
    service: &'a MapperService,
    client: Option<&'a str>,
}

impl Drop for ColdSlot<'_> {
    fn drop(&mut self) {
        self.service.release_slot(self.client);
    }
}

/// Whether `deadline` has passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|at| Instant::now() >= at)
}

fn respond(source: ResponseSource, key: u64, record: StoreRecord, start: Instant) -> MapResponse {
    MapResponse {
        source,
        key,
        objective: record.objective,
        cost: record.cost,
        cycles: record.report.cycles(),
        energy: record.report.energy(),
        evaluations: record.evaluations,
        micros: start.elapsed().as_micros() as u64,
        degraded: false,
        retry_after_ms: None,
        stop_reason: None,
        mapping: Some(record.mapping),
    }
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = panic.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = panic.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Forwards one engine's progress into the service-wide shared sink.
struct SharedSink {
    inner: Arc<Mutex<Box<dyn ProgressSink>>>,
}

impl ProgressSink for SharedSink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.emit(snapshot);
        }
    }

    fn finish(&mut self, summary: &serde::Value) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.finish(summary);
        }
    }

    fn metrics(&mut self, dump: &serde::Value) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.metrics(dump);
        }
    }
}
