//! The [`MapperService`]: warm hits from the store, cold queries
//! through a supervised pool of search engines.
//!
//! Warm path: fingerprint the query, look it up in the store under a
//! short-lived lock, clone the record out — microseconds, no search.
//!
//! Cold path: build the mapspace, run one [`Engine`] (single-threaded
//! per query by default, so repeated cold runs of the same query are
//! bit-identical; batches get their parallelism *across* queries), then
//! write the winner back to the store so every later repeat is warm.
//! The engine inherits the service's [`StopToken`], so one signal
//! drains every in-flight search, and each cold query can checkpoint
//! under the service's checkpoint directory and resume after a crash.
//!
//! Supervision: a panic anywhere in a cold query (mapspace
//! construction, enumeration, the model) is caught and returned as a
//! [`ServeError::Search`] for that query alone; the pool and the other
//! queries keep going — the same containment contract the engine's own
//! worker pool gives individual evaluations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ruby_mapspace::{Constraints, Mapspace};
use ruby_search::{Engine, SearchConfig, SearchStrategy, StopToken};
use ruby_store::{MappingStore, StoreRecord};
use ruby_telemetry::{ProgressSink, SearchSnapshot};

use crate::{MapQuery, MapResponse, ResponseSource, ServeError};

/// How a [`MapperService`] is wired.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The durable store log.
    pub store_path: PathBuf,
    /// Worker-pool width for [`MapperService::handle_batch`].
    pub workers: usize,
    /// Engine threads per cold query; 1 (the default) keeps every cold
    /// search bit-deterministic and lets batches parallelize across
    /// queries instead.
    pub threads_per_query: usize,
    /// Seed for cold searches.
    pub seed: u64,
    /// When set, every cold query checkpoints into this directory
    /// (file name = the store key) and resumes from it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint stride in evaluations.
    pub checkpoint_every: u64,
}

impl ServiceConfig {
    /// Defaults: 2 workers, deterministic single-threaded cold
    /// searches, no checkpoints.
    pub fn new(store_path: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            store_path: store_path.into(),
            workers: 2,
            threads_per_query: 1,
            seed: 1,
            checkpoint_dir: None,
            checkpoint_every: 10_000,
        }
    }
}

/// Service counters, for the shutdown summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered (errors included).
    pub queries: u64,
    /// Answered from the store.
    pub store_hits: u64,
    /// Answered by a fresh search.
    pub cold_searches: u64,
}

/// The mapper service: a [`MappingStore`] fronted by a pool of engines.
pub struct MapperService {
    config: ServiceConfig,
    store: Mutex<MappingStore>,
    token: StopToken,
    progress: Option<Arc<Mutex<Box<dyn ProgressSink>>>>,
    queries: AtomicU64,
    store_hits: AtomicU64,
    cold_searches: AtomicU64,
}

impl MapperService {
    /// Opens the service over the store at `config.store_path`,
    /// recovering the log as [`MappingStore::open`] does.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] when the log cannot be opened.
    pub fn open(config: ServiceConfig) -> Result<Self, ServeError> {
        let store = MappingStore::open(&config.store_path)?;
        Ok(MapperService {
            config,
            store: Mutex::new(store),
            token: StopToken::new(),
            progress: None,
            queries: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            cold_searches: AtomicU64::new(0),
        })
    }

    /// Streams every cold search's progress into `sink` (snapshots,
    /// summaries and metrics interleave across workers; each record
    /// carries its own identity).
    pub fn with_progress(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.progress = Some(Arc::new(Mutex::new(sink)));
        self
    }

    /// A clone of the service's stop token: trip it (e.g. from a signal
    /// handler) and in-flight cold searches drain, while queued batch
    /// entries come back [`ServeError::Stopped`].
    pub fn stop_token(&self) -> StopToken {
        self.token.clone()
    }

    /// Service counters so far.
    pub fn stats(&self) -> ServiceStats {
        // ordering: Relaxed — independent monotonic counters, read for reporting only.
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            cold_searches: self.cold_searches.load(Ordering::Relaxed),
        }
    }

    /// Live entries in the underlying store.
    pub fn store_len(&self) -> usize {
        match self.store.lock() {
            Ok(store) => store.len(),
            Err(_) => 0,
        }
    }

    /// Compacts the underlying store log (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] when the rewrite fails; the
    /// previous log generation survives.
    pub fn compact(&self) -> Result<(), ServeError> {
        let mut store = self.lock_store()?;
        store.compact()?;
        Ok(())
    }

    /// Answers one query: warm from the store if its fingerprint is
    /// known, otherwise by a fresh supervised search whose winner is
    /// persisted before the response is returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Search`] when the cold search panics or finds no
    /// valid mapping; [`ServeError::Store`] when the store refuses the
    /// lookup or write-back.
    pub fn handle(&self, query: &MapQuery) -> Result<MapResponse, ServeError> {
        let start = Instant::now();
        // ordering: Relaxed — independent monotonic counter.
        self.queries.fetch_add(1, Ordering::Relaxed);
        let constraints = Constraints::unconstrained(query.arch.num_levels());
        let key = ruby_store::config_key(
            &query.arch,
            &query.workload,
            &constraints,
            query.mapspace,
            query.objective.name(),
        );

        {
            let store = self.lock_store()?;
            if let Some(record) = store.get(key) {
                // ordering: Relaxed — independent monotonic counter.
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(respond(ResponseSource::Store, key, record.clone(), start));
            }
        }

        // ordering: Relaxed — independent monotonic counter.
        self.cold_searches.fetch_add(1, Ordering::Relaxed);
        let record = self.cold_search(query, key)?;
        let record = {
            let mut store = self.lock_store()?;
            store.put(record.clone())?;
            // An improving record may have landed between our lookup
            // and the write-back; always answer with the store's view
            // so repeats of this query are bit-identical to it.
            // justified: the key was either present or just written above
            store
                .get(key)
                .cloned()
                .expect("record just written vanished")
        };
        Ok(respond(ResponseSource::Search, key, record, start))
    }

    /// Answers a batch, sharding cold queries across the worker pool.
    /// Results come back in query order; each entry fails or succeeds
    /// on its own.
    pub fn handle_batch(&self, queries: &[MapQuery]) -> Vec<Result<MapResponse, ServeError>> {
        let slots: Vec<Mutex<Option<Result<MapResponse, ServeError>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.config.workers.max(1).min(queries.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ordering: Relaxed — the work index carries no other state.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else {
                        break;
                    };
                    let result = if self.token.stop_requested() {
                        Err(ServeError::Stopped)
                    } else {
                        self.handle(query)
                    };
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| match slot.into_inner() {
                Ok(Some(result)) => result,
                _ => Err(ServeError::Search("worker died mid-query".to_owned())),
            })
            .collect()
    }

    /// One supervised cold search: any panic becomes a per-query error.
    fn cold_search(&self, query: &MapQuery, key: u64) -> Result<StoreRecord, ServeError> {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_engine(query, key)))
                .map_err(|panic| {
                    ServeError::Search(format!("worker panicked: {}", panic_text(&panic)))
                })??;
        Ok(outcome)
    }

    fn run_engine(&self, query: &MapQuery, key: u64) -> Result<StoreRecord, ServeError> {
        let space = Mapspace::new(query.arch.clone(), query.workload.clone(), query.mapspace);
        let (max_evaluations, termination) = query.budget.params();
        let config = SearchConfig::builder()
            .seed(self.config.seed)
            .max_evaluations(max_evaluations)
            .termination(termination)
            .threads(self.config.threads_per_query.max(1))
            .objective(query.objective)
            .strategy(SearchStrategy::Random)
            .prune(true)
            .build()
            .map_err(|e| ServeError::Query(e.to_string()))?;
        let mut engine = Engine::new(&space)
            .with_config(config)
            .with_stop_token(self.token.clone());
        if let Some(dir) = &self.config.checkpoint_dir {
            engine = engine
                .with_checkpoint(
                    dir.join(format!("{key:016x}.ckpt")),
                    self.config.checkpoint_every,
                )
                .resume();
        }
        if let Some(progress) = &self.progress {
            engine = engine.with_progress(Box::new(SharedSink {
                inner: Arc::clone(progress),
            }));
        }
        let outcome = engine
            .try_run()
            .map_err(|e| ServeError::Search(e.to_string()))?;
        let best = outcome.best.ok_or_else(|| {
            ServeError::Search(format!(
                "no valid {} mapping in {} evaluations",
                query.mapspace.name(),
                outcome.evaluations
            ))
        })?;
        Ok(StoreRecord {
            key,
            objective: query.objective.name().to_owned(),
            cost: best.cost,
            evaluations: outcome.evaluations,
            mapping: best.mapping,
            report: best.report,
        })
    }

    fn lock_store(&self) -> Result<std::sync::MutexGuard<'_, MappingStore>, ServeError> {
        self.store
            .lock()
            .map_err(|_| ServeError::Search("store mutex poisoned".to_owned()))
    }
}

fn respond(source: ResponseSource, key: u64, record: StoreRecord, start: Instant) -> MapResponse {
    MapResponse {
        source,
        key,
        objective: record.objective,
        cost: record.cost,
        cycles: record.report.cycles(),
        energy: record.report.energy(),
        evaluations: record.evaluations,
        micros: start.elapsed().as_micros() as u64,
        mapping: record.mapping,
    }
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = panic.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = panic.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Forwards one engine's progress into the service-wide shared sink.
struct SharedSink {
    inner: Arc<Mutex<Box<dyn ProgressSink>>>,
}

impl ProgressSink for SharedSink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.emit(snapshot);
        }
    }

    fn finish(&mut self, summary: &serde::Value) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.finish(summary);
        }
    }

    fn metrics(&mut self, dump: &serde::Value) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.metrics(dump);
        }
    }
}
