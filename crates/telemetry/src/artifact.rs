//! Atomic artifact writes: no crash leaves a torn JSON file behind.
//!
//! Every artifact the workspace persists (`BENCH_search.json`,
//! `BENCH_layers.jsonl`, `--out`, `--metrics-out`, checkpoints) goes
//! through [`write_atomic`]: the bytes land in a `<path>.tmp` sibling,
//! are fsynced, and only then renamed over the destination. A reader
//! therefore sees either the complete old file or the complete new one,
//! never a prefix — the rename is the commit point.
//!
//! The `artifact.write` failpoint (feature `failpoints`) simulates a
//! crash mid-write: `torn:N` truncates the temporary file after `N`
//! bytes and fails *without renaming*, which is exactly the on-disk
//! state a power loss would leave.

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically (tmp + fsync + rename).
///
/// On error the destination is untouched: either the previous contents
/// survive or the file still does not exist. A stale `<path>.tmp` may
/// remain after a failure and is overwritten by the next attempt.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let result = write_tmp(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        // Best-effort cleanup; the torn failpoint intentionally leaves
        // the truncated tmp in place to emulate a crash artifact.
        if !torn_injected() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
    result
}

/// The temporary sibling `write_atomic` stages into: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::path::PathBuf::from(tmp)
}

fn write_tmp(tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(tmp)?;
    match ruby_failpoints::hit("artifact.write") {
        ruby_failpoints::Action::Torn(n) => {
            // Simulated crash: a prefix reaches the disk, the rename
            // never happens, and the caller sees the failure.
            file.write_all(&bytes[..n.min(bytes.len())])?;
            file.sync_all()?;
            set_torn_injected();
            return Err(std::io::Error::other(
                "failpoint artifact.write: torn write",
            ));
        }
        ruby_failpoints::Action::Err => {
            return Err(std::io::Error::other(
                "failpoint artifact.write: injected error",
            ));
        }
        _ => {}
    }
    file.write_all(bytes)?;
    file.sync_all()
}

#[cfg(feature = "failpoints")]
mod torn_flag {
    use std::cell::Cell;
    std::thread_local! {
        pub static TORN: Cell<bool> = const { Cell::new(false) };
    }
}

#[cfg(feature = "failpoints")]
fn set_torn_injected() {
    torn_flag::TORN.with(|t| t.set(true));
}

#[cfg(feature = "failpoints")]
fn torn_injected() -> bool {
    torn_flag::TORN.with(|t| t.replace(false))
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn set_torn_injected() {}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn torn_injected() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ruby-artifact-{name}-{}", std::process::id()));
        path
    }

    #[test]
    fn write_lands_the_full_contents_and_no_tmp() {
        let path = scratch("full");
        write_atomic(&path, b"{\"ok\":true}\n").expect("atomic write");
        assert_eq!(std::fs::read(&path).expect("readable"), b"{\"ok\":true}\n");
        assert!(!tmp_path(&path).exists(), "tmp must be renamed away");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overwrite_replaces_previous_contents() {
        let path = scratch("overwrite");
        write_atomic(&path, b"old").expect("first write");
        write_atomic(&path, b"new-and-longer").expect("second write");
        assert_eq!(std::fs::read(&path).expect("readable"), b"new-and-longer");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_write_leaves_the_destination_untouched() {
        let path = scratch("missing-dir");
        let mut nested = path.clone();
        nested.push("no-such-dir/out.json");
        assert!(write_atomic(&nested, b"x").is_err());
        assert!(!nested.exists());
    }
}
