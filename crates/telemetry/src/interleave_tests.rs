//! Bounded-exhaustive interleaving checks for the snapshot slot's epoch
//! publish protocol, driven by the `ruby-analysis` mini-loom.
//!
//! Under `cfg(test)` the slot's atomics come from the interleaving shim
//! (see the `sync` module in `snapshot.rs`), so [`SnapshotSlot`] runs
//! here *unmodified*: every schedule the explorer generates is a real
//! execution of the production protocol, with a context switch forced
//! before each atomic access.

use ruby_analysis::interleave::Explorer;

use crate::snapshot::SnapshotSlot;

/// Distinguishable payloads: every word of publication A differs from
/// every word of publication B, so any torn mix is detectable.
const A: [u64; 2] = [1, 11];
const B: [u64; 2] = [2, 22];

#[test]
fn reader_racing_one_writer_sees_nothing_or_the_whole_snapshot() {
    let report = Explorer::new(50_000).explore(|sched| {
        let slot: SnapshotSlot<2> = SnapshotSlot::new();
        let s = &slot;
        sched.run(vec![
            Box::new(move || {
                // The only writer: an uncontended claim must succeed.
                assert!(s.publish(&A), "uncontended publish must claim");
            }),
            Box::new(move || {
                let got = s.read();
                assert!(
                    got.is_none() || got == Some(A),
                    "torn or phantom snapshot: {got:?}"
                );
            }),
        ]);
        // After both threads retire, the publication must be readable.
        assert_eq!(slot.read(), Some(A), "publication lost");
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn reader_racing_two_publications_never_sees_a_torn_mix() {
    // Two back-to-back publications against a retrying reader spawn a
    // schedule tree too large to exhaust (the reader's bounded retry
    // loop multiplies every writer step), so this is a *bounded*
    // exploration: every explored schedule must be invariant-clean, and
    // the budget keeps the runtime sane.
    let report = Explorer::new(20_000).explore(|sched| {
        let slot: SnapshotSlot<2> = SnapshotSlot::new();
        let s = &slot;
        sched.run(vec![
            Box::new(move || {
                // Same-thread sequential publishes: the first claim is
                // uncontended and the second starts from a stable even
                // epoch, so both must succeed.
                assert!(s.publish(&A));
                assert!(s.publish(&B));
            }),
            Box::new(move || {
                let got = s.read();
                assert!(
                    got.is_none() || got == Some(A) || got == Some(B),
                    "torn snapshot: {got:?}"
                );
            }),
        ]);
        assert_eq!(slot.read(), Some(B), "later publication must win");
    });
    assert!(report.schedules >= 1_000, "{}", report.schedules);
}

#[test]
fn racing_writers_are_lossy_but_never_corrupt() {
    let report = Explorer::new(50_000).explore(|sched| {
        let slot: SnapshotSlot<2> = SnapshotSlot::new();
        let s = &slot;
        sched.run(vec![
            Box::new(move || {
                let _ = s.publish(&A); // may lose the claim race
            }),
            Box::new(move || {
                let _ = s.publish(&B); // may lose the claim race
            }),
        ]);
        // At least one claim wins (the first CAS in program order is
        // uncontended in some schedule; in all schedules the epoch ends
        // even), and whatever is readable is one intact publication.
        let got = slot.read();
        assert!(
            got == Some(A) || got == Some(B),
            "both publications lost or torn: {got:?}"
        );
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}
