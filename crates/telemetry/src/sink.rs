//! Progress sinks: where streamed [`SearchSnapshot`]s go.
//!
//! The search engine talks to a sink from a dedicated monitor thread,
//! never from workers, so sink implementations may block (terminal
//! writes, file I/O) without touching search throughput. I/O errors are
//! swallowed: losing a progress line must never fail a search.

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::LazyCounter;
use crate::snapshot::SearchSnapshot;

/// Events dropped by a sink that could not write (I/O error, injected
/// fault). Sinks degrade — drop the event, bump this — rather than let
/// an output problem propagate into the search.
static SINK_ERRORS: LazyCounter = LazyCounter::new("telemetry.sink.errors");

/// A consumer of streamed search progress.
///
/// Lifecycle: zero or more [`emit`](Self::emit) calls while the search
/// runs (each strictly newer than the last), then exactly one
/// [`finish`](Self::finish) with the serialized `SearchOutcome` summary
/// record, then — only in `telemetry`-feature builds — one
/// [`metrics`](Self::metrics) with the registry dump.
pub trait ProgressSink: Send {
    /// Handles one progress snapshot.
    fn emit(&mut self, snapshot: &SearchSnapshot);

    /// Handles the final summary record (the search outcome, tagged
    /// `"event": "summary"`).
    fn finish(&mut self, _summary: &serde::Value) {}

    /// Handles the metrics-registry dump (tagged `"event": "metrics"`).
    fn metrics(&mut self, _dump: &serde::Value) {}
}

/// Tags `record` with an `"event"` field right after `"schema"` (or at
/// the front when there is none); non-objects pass through unchanged.
fn tag_event(record: &serde::Value, event: &str) -> serde::Value {
    match record {
        serde::Value::Obj(fields) => {
            let mut tagged = Vec::with_capacity(fields.len() + 1);
            let mut inserted = false;
            for (key, value) in fields {
                if key == "event" {
                    continue; // never double-tag
                }
                tagged.push((key.clone(), value.clone()));
                if key == "schema" && !inserted {
                    tagged.push(("event".to_owned(), serde::Value::Str(event.to_owned())));
                    inserted = true;
                }
            }
            if !inserted {
                tagged.insert(0, ("event".to_owned(), serde::Value::Str(event.to_owned())));
            }
            serde::Value::Obj(tagged)
        }
        other => other.clone(),
    }
}

/// An ANSI progress line, redrawn in place on a terminal.
pub struct HumanSink {
    out: Box<dyn Write + Send>,
    dirty: bool,
}

impl HumanSink {
    /// A sink drawing on standard error (the conventional progress
    /// stream: stdout stays clean for `--json` output).
    pub fn stderr() -> Self {
        HumanSink::new(Box::new(std::io::stderr()))
    }

    /// A sink drawing on an arbitrary writer (used by tests).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        HumanSink { out, dirty: false }
    }

    fn render(snapshot: &SearchSnapshot) -> String {
        let best = match snapshot.best_cost() {
            Some(cost) => format!("{cost:.4e}"),
            None => "-".to_owned(),
        };
        format!(
            "[search] {:.1}s  {} evals ({:.0}/s)  valid {:.1}%  best {}  \
             improvements {}  pruned {}  threads {}/{}",
            snapshot.elapsed_secs(),
            snapshot.evaluations,
            snapshot.evals_per_sec(),
            snapshot.valid_rate() * 100.0,
            best,
            snapshot.improvements,
            snapshot.pruned_mappings,
            snapshot.live_threads,
            snapshot.threads,
        )
    }
}

impl ProgressSink for HumanSink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        // `\r` + clear-line redraws in place; losing a line to an I/O
        // error is harmless, so the result is deliberately dropped.
        let _ = write!(self.out, "\r\x1b[2K{}", Self::render(snapshot));
        let _ = self.out.flush();
        self.dirty = true;
    }

    fn finish(&mut self, _summary: &serde::Value) {
        if self.dirty {
            let _ = writeln!(self.out);
            let _ = self.out.flush();
            self.dirty = false;
        }
    }
}

/// One JSON record per line: `snapshot` events while running, then a
/// `summary` event, then (feature builds) a `metrics` event.
///
/// File-backed sinks ([`create`](Self::create)) stream into a
/// `<path>.tmp` sibling and rename it over the destination when the
/// sink drops, after the last event (`metrics` arrives *after*
/// `finish`, so the commit point cannot be earlier). A killed process
/// leaves only the `.tmp` staging file — never a torn artifact at the
/// requested path.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    staged: Option<Staged>,
}

/// The tmp → destination rename pending on a file-backed sink.
struct Staged {
    tmp: std::path::PathBuf,
    dest: std::path::PathBuf,
}

impl JsonlSink {
    /// A sink streaming to the file at `path` (created or truncated),
    /// committed atomically when the sink drops.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let dest = std::path::PathBuf::from(path);
        let tmp = crate::artifact::tmp_path(&dest);
        let file = std::fs::File::create(&tmp)?;
        Ok(JsonlSink {
            out: Box::new(std::io::BufWriter::new(file)),
            staged: Some(Staged { tmp, dest }),
        })
    }

    /// A sink writing to an arbitrary writer (used by tests).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink { out, staged: None }
    }

    fn write_line(&mut self, value: &serde::Value) {
        // Progress is best-effort: an unwritable line must not fail the
        // search. Failures degrade to a dropped event plus a counter
        // bump. (Value trees always serialize, so a to_string error is
        // counted but cannot otherwise occur.)
        let result = match ruby_failpoints::hit("telemetry.sink.write") {
            ruby_failpoints::Action::Off => match serde_json::to_string(value) {
                Ok(text) => writeln!(self.out, "{text}"),
                Err(_) => Err(std::io::Error::other("unserializable value")),
            },
            _ => Err(std::io::Error::other(
                "failpoint telemetry.sink.write: injected error",
            )),
        };
        if result.is_err() {
            SINK_ERRORS.inc();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let Some(staged) = self.staged.take() else {
            return;
        };
        // Commit: flush the buffered tail, then publish with a rename.
        // Either step failing leaves the destination untouched (old
        // contents or absent) and is reported through the counter.
        if self.out.flush().is_err() {
            SINK_ERRORS.inc();
        }
        if std::fs::rename(&staged.tmp, &staged.dest).is_err() {
            SINK_ERRORS.inc();
        }
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        self.write_line(&serde::Serialize::to_value(snapshot));
    }

    fn finish(&mut self, summary: &serde::Value) {
        self.write_line(&tag_event(summary, "summary"));
        let _ = self.out.flush();
    }

    fn metrics(&mut self, dump: &serde::Value) {
        let tagged = tag_event(dump, "metrics");
        self.write_line(&tagged);
        let _ = self.out.flush();
    }
}

#[derive(Debug, Default)]
struct MemoryStore {
    snapshots: Vec<SearchSnapshot>,
    summary: Option<serde::Value>,
    metrics: Option<serde::Value>,
}

/// An in-memory sink for tests and embedders: clone it, hand one copy
/// to the engine, and inspect the other after the run.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    store: Arc<Mutex<MemoryStore>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    fn with_store<R>(&self, f: impl FnOnce(&mut MemoryStore) -> R) -> R {
        // Every write completes before unlock, so a poisoned store is
        // still consistent.
        f(&mut self.store.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// All snapshots received so far, in emission order.
    pub fn snapshots(&self) -> Vec<SearchSnapshot> {
        self.with_store(|s| s.snapshots.clone())
    }

    /// The summary record, once [`ProgressSink::finish`] ran.
    pub fn summary(&self) -> Option<serde::Value> {
        self.with_store(|s| s.summary.clone())
    }

    /// The metrics dump, once [`ProgressSink::metrics`] ran.
    pub fn metrics_dump(&self) -> Option<serde::Value> {
        self.with_store(|s| s.metrics.clone())
    }
}

impl ProgressSink for MemorySink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        self.with_store(|s| s.snapshots.push(*snapshot));
    }

    fn finish(&mut self, summary: &serde::Value) {
        let tagged = tag_event(summary, "summary");
        self.with_store(|s| s.summary = Some(tagged));
    }

    fn metrics(&mut self, dump: &serde::Value) {
        let tagged = tag_event(dump, "metrics");
        self.with_store(|s| s.metrics = Some(tagged));
    }
}

/// Fans every event out to several sinks (e.g. a terminal progress line
/// *and* a JSONL file for the same run).
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn ProgressSink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiSink::default()
    }

    /// Adds a sink to the fan-out.
    pub fn push(&mut self, sink: Box<dyn ProgressSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProgressSink for MultiSink {
    fn emit(&mut self, snapshot: &SearchSnapshot) {
        for sink in &mut self.sinks {
            sink.emit(snapshot);
        }
    }

    fn finish(&mut self, summary: &serde::Value) {
        for sink in &mut self.sinks {
            sink.finish(summary);
        }
    }

    fn metrics(&mut self, dump: &serde::Value) {
        for sink in &mut self.sinks {
            sink.metrics(dump);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    /// A `Write` handle into a shared buffer, so tests can inspect what
    /// a boxed sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            let bytes = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            String::from_utf8_lossy(&bytes).into_owned()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn snapshot(seq: u64) -> SearchSnapshot {
        SearchSnapshot {
            seq,
            elapsed_nanos: 1_000_000_000,
            evaluations: 100 * seq,
            valid: 40 * seq,
            invalid: 50 * seq,
            duplicates: 10 * seq,
            improvements: seq,
            best_cost_bits: 2.5f64.to_bits(),
            live_threads: 2,
            threads: 2,
            ..SearchSnapshot::default()
        }
    }

    #[test]
    fn human_sink_redraws_and_terminates_the_line() {
        let buf = SharedBuf::default();
        let mut sink = HumanSink::new(Box::new(buf.clone()));
        sink.emit(&snapshot(1));
        sink.emit(&snapshot(2));
        sink.finish(&serde::Value::Null);
        let text = buf.contents();
        assert_eq!(text.matches("\r\x1b[2K").count(), 2);
        assert!(text.contains("200 evals"));
        assert!(text.contains("valid 40.0%"));
        assert!(text.ends_with('\n'), "finish must release the line");
    }

    #[test]
    fn jsonl_sink_emits_one_parsable_record_per_line() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&snapshot(1));
        sink.emit(&snapshot(2));
        sink.finish(&serde::Value::Obj(vec![(
            "schema".to_owned(),
            serde::Value::U64(1),
        )]));
        sink.metrics(&serde::Value::Obj(vec![(
            "search.memo.hit".to_owned(),
            serde::Value::U64(9),
        )]));
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = serde_json::from_str::<serde::Value>(lines[0]).expect("line 1 parses");
        let snap = SearchSnapshot::from_value(&first).expect("snapshot event");
        assert_eq!(snap.seq, 1);
        let summary = serde_json::from_str::<serde::Value>(lines[2]).expect("line 3 parses");
        assert_eq!(
            summary.get("event"),
            Some(&serde::Value::Str("summary".to_owned()))
        );
        assert_eq!(summary.get("schema"), Some(&serde::Value::U64(1)));
        let metrics = serde_json::from_str::<serde::Value>(lines[3]).expect("line 4 parses");
        assert_eq!(
            metrics.get("event"),
            Some(&serde::Value::Str("metrics".to_owned()))
        );
    }

    #[test]
    fn memory_and_multi_sinks_capture_everything() {
        let memory = MemorySink::new();
        let buf = SharedBuf::default();
        let mut multi = MultiSink::new();
        multi.push(Box::new(memory.clone()));
        multi.push(Box::new(JsonlSink::new(Box::new(buf.clone()))));
        assert_eq!(multi.len(), 2);
        multi.emit(&snapshot(1));
        multi.finish(&serde::Value::Obj(vec![(
            "evaluations".to_owned(),
            serde::Value::U64(100),
        )]));
        assert_eq!(memory.snapshots().len(), 1);
        let summary = memory.summary().expect("finish recorded");
        // With no "schema" field the tag lands at the front.
        assert_eq!(
            summary.get("event"),
            Some(&serde::Value::Str("summary".to_owned()))
        );
        assert!(buf.contents().lines().count() == 2);
        assert!(memory.metrics_dump().is_none());
    }

    #[test]
    fn file_backed_jsonl_sink_commits_on_drop() {
        let mut path = std::env::temp_dir();
        path.push(format!("ruby-sink-commit-{}.jsonl", std::process::id()));
        let path_str = path.to_str().expect("temp path is utf-8").to_owned();
        let tmp = crate::artifact::tmp_path(&path);
        {
            let mut sink = JsonlSink::create(&path_str).expect("create");
            sink.emit(&snapshot(1));
            sink.finish(&serde::Value::Null);
            assert!(tmp.exists(), "events stream into the staging file");
            assert!(!path.exists(), "destination appears only on commit");
        }
        assert!(!tmp.exists(), "drop renames the staging file away");
        let text = std::fs::read_to_string(&path).expect("committed file");
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(all(feature = "failpoints", feature = "telemetry"))]
    #[test]
    fn injected_write_errors_degrade_and_are_counted() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&snapshot(1));
        let before = SINK_ERRORS.get();
        assert!(ruby_failpoints::arm("telemetry.sink.write", "err"));
        sink.emit(&snapshot(2));
        sink.emit(&snapshot(3));
        ruby_failpoints::disarm("telemetry.sink.write");
        sink.emit(&snapshot(4));
        assert_eq!(SINK_ERRORS.get() - before, 2, "one bump per dropped event");
        let text = buf.contents();
        assert_eq!(text.lines().count(), 2, "injected events are dropped");
    }

    #[test]
    fn tag_event_never_double_tags() {
        let once = tag_event(
            &serde::Value::Obj(vec![(
                "event".to_owned(),
                serde::Value::Str("stale".to_owned()),
            )]),
            "summary",
        );
        let serde::Value::Obj(fields) = &once else {
            panic!("object expected");
        };
        assert_eq!(fields.len(), 1);
        assert_eq!(
            once.get("event"),
            Some(&serde::Value::Str("summary".to_owned()))
        );
    }
}
