//! Epoch-published search snapshots.
//!
//! Workers publish progress through a [`SnapshotSlot`]: a seqlock-style
//! cell holding a fixed array of `u64` words guarded by an epoch
//! counter. The protocol:
//!
//! * the epoch starts at 0 ("never published"); an even value means the
//!   words are stable; an odd value means a writer owns the slot;
//! * a writer claims the slot by CASing the even epoch to odd, stores
//!   the words, then bumps the epoch to the next even value. If the
//!   claim fails the snapshot is simply *dropped* — publication is
//!   lossy by design, so no writer ever waits;
//! * a reader loads the epoch, copies the words, and re-loads the
//!   epoch: a stable pair of identical even epochs proves the copy is
//!   untorn. A bounded retry keeps the reader from spinning forever
//!   against a pathological writer.
//!
//! The protocol is model-checked against the `ruby-analysis`
//! interleaving explorer in `interleave_tests.rs`: under every schedule
//! of a racing writer and reader, the reader observes `None` or a
//! complete snapshot — never a mix of two publications.

/// Atomics for the publish protocol. Test builds route through the
/// `ruby-analysis` interleaving shim (a dev-dependency) so the
/// epoch protocol can be model-checked on the exact production code.
#[cfg(not(test))]
pub(crate) mod sync {
    pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
}
#[cfg(test)]
pub(crate) mod sync {
    pub(crate) use ruby_analysis::interleave::shim::{AtomicU64, Ordering};
}

use crate::snapshot::sync::{AtomicU64, Ordering};
use crate::SCHEMA_VERSION;

/// How many times [`SnapshotSlot::read`] retries before giving up.
const READ_RETRIES: usize = 64;

/// A lossy single-writer-at-a-time publication cell for `N` words.
#[derive(Debug)]
pub struct SnapshotSlot<const N: usize> {
    // ordering: SeqCst protocol (see the publish/read comments below);
    // the cells start at zero = "never published".
    epoch: AtomicU64,
    words: [AtomicU64; N],
}

impl<const N: usize> SnapshotSlot<N> {
    /// An empty slot (readers see `None` until the first publish).
    pub fn new() -> Self {
        SnapshotSlot {
            // ordering: SeqCst protocol cells, zero-initialized; the
            // constructor itself is single-threaded.
            epoch: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; N],
        }
    }

    /// Publishes `words`, returning whether the slot was claimed.
    /// Failure means another writer held the slot — the caller should
    /// drop the snapshot and move on (the next publish supersedes it).
    pub fn publish(&self, words: &[u64; N]) -> bool {
        // ordering: SeqCst — publication is off the hot path (one call
        // per ~thousand evaluations), so the strongest ordering costs
        // nothing and keeps the epoch protocol trivially sequentially
        // consistent: claim (odd) happens-before the word stores, which
        // happen-before the release to the next even epoch.
        let epoch = self.epoch.load(Ordering::SeqCst);
        if epoch & 1 == 1 {
            return false;
        }
        if self
            .epoch
            // ordering: SeqCst — see the protocol comment above.
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        for (cell, &word) in self.words.iter().zip(words) {
            // ordering: SeqCst — see the protocol comment above.
            cell.store(word, Ordering::SeqCst);
        }
        // ordering: SeqCst — see the protocol comment above.
        self.epoch.store(epoch + 2, Ordering::SeqCst);
        true
    }

    /// The most recent stable publication, or `None` if nothing was
    /// ever published (or a writer monopolized the slot for all
    /// [`READ_RETRIES`] attempts).
    pub fn read(&self) -> Option<[u64; N]> {
        for _ in 0..READ_RETRIES {
            // ordering: SeqCst — matching the writer's protocol (see
            // `publish`): equal even epochs around the copy prove no
            // writer touched the words in between.
            let before = self.epoch.load(Ordering::SeqCst);
            if before == 0 {
                return None;
            }
            if before & 1 == 1 {
                continue; // a writer owns the slot; retry
            }
            let mut out = [0u64; N];
            for (word, cell) in out.iter_mut().zip(&self.words) {
                // ordering: SeqCst — see the protocol comment above.
                *word = cell.load(Ordering::SeqCst);
            }
            // ordering: SeqCst — see the protocol comment above.
            if self.epoch.load(Ordering::SeqCst) == before {
                return Some(out);
            }
        }
        None
    }
}

impl<const N: usize> Default for SnapshotSlot<N> {
    fn default() -> Self {
        SnapshotSlot::new()
    }
}

/// A point-in-time view of a running search, encoded as
/// [`SearchSnapshot::WORDS`] `u64` words for the [`SnapshotSlot`].
///
/// Counter semantics match [`SearchOutcome`]: `evaluations = valid +
/// invalid + duplicates`, `duplicates` doubles as the memo hit count
/// and `valid + invalid` as the miss count (every miss is evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchSnapshot {
    /// Publication sequence number (1-based; later supersedes earlier).
    pub seq: u64,
    /// Nanoseconds since the search started.
    pub elapsed_nanos: u64,
    /// Candidates scored so far.
    pub evaluations: u64,
    /// Model-valid mappings among them.
    pub valid: u64,
    /// Model-rejected mappings among them.
    pub invalid: u64,
    /// Memo-cache hits among them.
    pub duplicates: u64,
    /// Enumeration subtrees discarded by the cost lower bound.
    pub pruned_subtrees: u64,
    /// Individual candidates discarded by the cost lower bound.
    pub pruned_mappings: u64,
    /// Strict best-cost improvements recorded so far.
    pub improvements: u64,
    /// Bit pattern (`f64::to_bits`) of the best cost so far; `+inf`
    /// bits until the first valid mapping.
    pub best_cost_bits: u64,
    /// Worker threads currently inside the search loop.
    pub live_threads: u64,
    /// Worker threads configured for this phase.
    pub threads: u64,
}

impl SearchSnapshot {
    /// Number of `u64` words in the wire encoding.
    pub const WORDS: usize = 12;

    /// Packs the snapshot into its word encoding (field order above).
    pub fn encode(&self) -> [u64; Self::WORDS] {
        [
            self.seq,
            self.elapsed_nanos,
            self.evaluations,
            self.valid,
            self.invalid,
            self.duplicates,
            self.pruned_subtrees,
            self.pruned_mappings,
            self.improvements,
            self.best_cost_bits,
            self.live_threads,
            self.threads,
        ]
    }

    /// Unpacks a word encoding produced by [`Self::encode`].
    pub fn decode(words: &[u64; Self::WORDS]) -> Self {
        SearchSnapshot {
            seq: words[0],
            elapsed_nanos: words[1],
            evaluations: words[2],
            valid: words[3],
            invalid: words[4],
            duplicates: words[5],
            pruned_subtrees: words[6],
            pruned_mappings: words[7],
            improvements: words[8],
            best_cost_bits: words[9],
            live_threads: words[10],
            threads: words[11],
        }
    }

    /// Elapsed wall-clock time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_nanos as f64 / 1e9
    }

    /// Scoring throughput so far (0 before any time has elapsed).
    pub fn evals_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs > 0.0 {
            self.evaluations as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of scored candidates the model accepted (0 when none
    /// were scored).
    pub fn valid_rate(&self) -> f64 {
        if self.evaluations > 0 {
            self.valid as f64 / self.evaluations as f64
        } else {
            0.0
        }
    }

    /// Memo-cache hits (every duplicate is a hit).
    pub fn memo_hits(&self) -> u64 {
        self.duplicates
    }

    /// Memo-cache misses (every miss goes to the model).
    pub fn memo_misses(&self) -> u64 {
        self.valid + self.invalid
    }

    /// The best cost so far, or `None` before the first valid mapping.
    pub fn best_cost(&self) -> Option<f64> {
        let cost = f64::from_bits(self.best_cost_bits);
        cost.is_finite().then_some(cost)
    }
}

impl serde::Serialize for SearchSnapshot {
    fn to_value(&self) -> serde::Value {
        let best = match self.best_cost() {
            Some(cost) => serde::Value::F64(cost),
            None => serde::Value::Null,
        };
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(SCHEMA_VERSION)),
            ("event".to_owned(), serde::Value::Str("snapshot".to_owned())),
            ("seq".to_owned(), serde::Value::U64(self.seq)),
            (
                "elapsed_nanos".to_owned(),
                serde::Value::U64(self.elapsed_nanos),
            ),
            (
                "evaluations".to_owned(),
                serde::Value::U64(self.evaluations),
            ),
            ("valid".to_owned(), serde::Value::U64(self.valid)),
            ("invalid".to_owned(), serde::Value::U64(self.invalid)),
            ("duplicates".to_owned(), serde::Value::U64(self.duplicates)),
            (
                "pruned_subtrees".to_owned(),
                serde::Value::U64(self.pruned_subtrees),
            ),
            (
                "pruned_mappings".to_owned(),
                serde::Value::U64(self.pruned_mappings),
            ),
            (
                "improvements".to_owned(),
                serde::Value::U64(self.improvements),
            ),
            ("best_cost".to_owned(), best),
            (
                "live_threads".to_owned(),
                serde::Value::U64(self.live_threads),
            ),
            ("threads".to_owned(), serde::Value::U64(self.threads)),
            (
                "evals_per_sec".to_owned(),
                serde::Value::F64(self.evals_per_sec()),
            ),
            (
                "valid_rate".to_owned(),
                serde::Value::F64(self.valid_rate()),
            ),
        ])
    }
}

impl serde::Deserialize for SearchSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let schema = value.field("schema")?.as_u64()?;
        if schema != SCHEMA_VERSION {
            return Err(serde::Error::custom(format!(
                "unsupported snapshot schema {schema} (expected {SCHEMA_VERSION})"
            )));
        }
        let event = value.field("event")?.as_str()?;
        if event != "snapshot" {
            return Err(serde::Error::custom(format!(
                "expected event `snapshot`, got `{event}`"
            )));
        }
        let best_cost_bits = match value.field("best_cost")? {
            serde::Value::Null => f64::INFINITY.to_bits(),
            other => other.as_f64()?.to_bits(),
        };
        Ok(SearchSnapshot {
            seq: value.field("seq")?.as_u64()?,
            elapsed_nanos: value.field("elapsed_nanos")?.as_u64()?,
            evaluations: value.field("evaluations")?.as_u64()?,
            valid: value.field("valid")?.as_u64()?,
            invalid: value.field("invalid")?.as_u64()?,
            duplicates: value.field("duplicates")?.as_u64()?,
            pruned_subtrees: value.field("pruned_subtrees")?.as_u64()?,
            pruned_mappings: value.field("pruned_mappings")?.as_u64()?,
            improvements: value.field("improvements")?.as_u64()?,
            best_cost_bits,
            live_threads: value.field("live_threads")?.as_u64()?,
            threads: value.field("threads")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn sample() -> SearchSnapshot {
        SearchSnapshot {
            seq: 3,
            elapsed_nanos: 2_000_000_000,
            evaluations: 1_000,
            valid: 400,
            invalid: 500,
            duplicates: 100,
            pruned_subtrees: 7,
            pruned_mappings: 900,
            improvements: 5,
            best_cost_bits: 123.5f64.to_bits(),
            live_threads: 4,
            threads: 8,
        }
    }

    #[test]
    fn words_round_trip() {
        let snap = sample();
        assert_eq!(SearchSnapshot::decode(&snap.encode()), snap);
    }

    #[test]
    fn derived_rates_are_consistent() {
        let snap = sample();
        assert_eq!(snap.elapsed_secs(), 2.0);
        assert_eq!(snap.evals_per_sec(), 500.0);
        assert_eq!(snap.valid_rate(), 0.4);
        assert_eq!(snap.memo_hits(), 100);
        assert_eq!(snap.memo_misses(), 900);
        assert_eq!(snap.best_cost(), Some(123.5));
        let empty = SearchSnapshot::default();
        assert_eq!(empty.evals_per_sec(), 0.0);
        assert_eq!(empty.valid_rate(), 0.0);
        assert_eq!(
            SearchSnapshot {
                best_cost_bits: f64::INFINITY.to_bits(),
                ..empty
            }
            .best_cost(),
            None
        );
    }

    #[test]
    fn serde_round_trips_and_pins_the_schema() {
        let snap = sample();
        let value = snap.to_value();
        assert_eq!(
            value.get("schema"),
            Some(&serde::Value::U64(SCHEMA_VERSION))
        );
        assert_eq!(
            value.get("event"),
            Some(&serde::Value::Str("snapshot".to_owned()))
        );
        let back = SearchSnapshot::from_value(&value).expect("round-trip");
        assert_eq!(back, snap);
        // Unknown schema versions must be rejected, not misread.
        let mut fields = match value {
            serde::Value::Obj(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        fields[0].1 = serde::Value::U64(999);
        let err = SearchSnapshot::from_value(&serde::Value::Obj(fields));
        assert!(err.is_err(), "schema 999 must not parse");
    }

    #[test]
    fn slot_reads_none_then_the_latest_publication() {
        let slot: SnapshotSlot<3> = SnapshotSlot::new();
        assert_eq!(slot.read(), None);
        assert!(slot.publish(&[1, 2, 3]));
        assert_eq!(slot.read(), Some([1, 2, 3]));
        assert!(slot.publish(&[4, 5, 6]));
        assert_eq!(slot.read(), Some([4, 5, 6]));
    }
}
