//! Observability for the Ruby search engine: lock-free metrics,
//! epoch-published progress snapshots, and pluggable sinks.
//!
//! The paper's claims rest on *search dynamics* — valid-rate,
//! improvement staircases, memo hit rates, pruning yield — that the
//! engine computes on its hot path. This crate makes those dynamics
//! first-class outputs without slowing that path down:
//!
//! * [`metrics`] — atomic [`Counter`]s, log2-bucketed [`Histogram`]s and
//!   monotonic [`Gauge`]s behind `Lazy*` handles that register
//!   themselves in the process-wide [`MetricsRegistry`] on first use.
//!   With the `telemetry` cargo feature **off** (the default) every
//!   handle method compiles to an empty `#[inline(always)]` body — the
//!   instrumented crates carry zero runtime cost.
//! * [`snapshot`] — a seqlock-style [`SnapshotSlot`] through which
//!   search workers publish a fixed-size [`SearchSnapshot`] (counters,
//!   best cost, thread liveness) that a monitor thread reads without
//!   ever observing a torn value. Publication is lossy under
//!   contention by design: a skipped snapshot costs nothing, a lock
//!   would.
//! * [`sink`] — the [`ProgressSink`] trait plus three implementations:
//!   [`HumanSink`] (ANSI progress line), [`JsonlSink`] (one JSON event
//!   per line) and [`MemorySink`] (test capture). Sinks receive
//!   snapshots, a final summary record and — when the feature is on —
//!   a metrics dump.
//!
//! Every record the JSONL sink emits carries `"schema"`:
//! [`SCHEMA_VERSION`] and an `"event"` tag (`snapshot` / `summary` /
//! `metrics`); the schema table lives in DESIGN.md §5.4.

pub mod artifact;
pub mod metrics;
pub mod sink;
pub mod snapshot;

#[cfg(test)]
mod interleave_tests;

pub use artifact::{tmp_path, write_atomic};
pub use metrics::{
    registry, Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, MetricsRegistry,
    HISTOGRAM_BUCKETS,
};
pub use sink::{HumanSink, JsonlSink, MemorySink, MultiSink, ProgressSink};
pub use snapshot::{SearchSnapshot, SnapshotSlot};

/// Version stamped into every serialized record that crosses a process
/// boundary (telemetry JSONL events, `SearchOutcome` JSON,
/// `BENCH_search.json`). Bump on any breaking field change.
///
/// History: v2 added the resilience fields to `SearchOutcome`
/// (`stopped_early`, `stop_reason`, `worker_restarts`, `quarantined`).
/// v3 pinned `BENCH_search.json` speedup/parallel_efficiency to the
/// same strategy's measured single-thread point (previously the first
/// point per strategy, whatever its thread count) and switched the
/// random strategy to the duplicate-free permuted walk.
pub const SCHEMA_VERSION: u64 = 3;

/// Whether this build carries real metrics instrumentation (the
/// `telemetry` cargo feature). When `false`, the `Lazy*` handles are
/// no-ops and [`registry`] stays empty.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}
