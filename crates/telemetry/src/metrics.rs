//! Lock-free metric primitives and the process-wide registry.
//!
//! [`Counter`], [`Histogram`] and [`Gauge`] are plain atomic cells —
//! always compiled, unit-tested, and usable directly. Instrumented
//! crates, however, go through the `Lazy*` handles: a `static` handle
//! names the metric (`static HITS: LazyCounter =
//! LazyCounter::new("search.memo.hit");`) and its methods either
//! resolve-and-record (feature `telemetry` on) or compile to empty
//! inlined bodies (feature off). Resolution registers the metric in the
//! global [`MetricsRegistry`] exactly once and caches the reference, so
//! the steady-state cost of a live counter is one Relaxed `fetch_add`.
//!
//! All cells use `Ordering::Relaxed`: metrics are statistics, never
//! synchronization — no payload is published through them, and readers
//! (the registry dump) tolerate slightly stale values.

// ordering: Relaxed throughout this module — every atomic here is a
// statistics cell; only its arithmetic value matters and no other
// memory is published through it, so no acquire/release edges needed.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63`, so any `u64` lands in exactly one bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    // ordering: Relaxed — statistics cell (see module docs).
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter {
            // ordering: Relaxed statistics cell (see module docs).
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — statistics cell (see module docs).
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistics cell (see module docs).
        self.value.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Recording is one index computation plus one
/// Relaxed `fetch_add` — no floating point, no locks.
#[derive(Debug)]
pub struct Histogram {
    // ordering: Relaxed — statistics cells (see module docs).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            // ordering: Relaxed statistics cells (see module docs).
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` value range of bucket `index`.
    ///
    /// Out-of-range indices clamp to the last bucket.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index.min(HISTOGRAM_BUCKETS - 1) {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            i => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — statistics cell (see module docs).
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket counts (a relaxed snapshot; concurrent recorders may
    /// land between loads).
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            // ordering: Relaxed — statistics cell (see module docs).
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A monotonic high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    // ordering: Relaxed — statistics cell (see module docs).
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge {
            // ordering: Relaxed statistics cell (see module docs).
            value: AtomicU64::new(0),
        }
    }

    /// Raises the mark to `value` if it exceeds the current one.
    #[inline]
    pub fn record_max(&self, value: u64) {
        // ordering: Relaxed — statistics cell (see module docs);
        // fetch_max keeps the mark monotonic without a CAS loop.
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current high-water mark.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistics cell (see module docs).
        self.value.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Gauge(&'static Gauge),
}

/// The process-wide metric table.
///
/// Registration happens once per metric (first touch of its `Lazy*`
/// handle) under a mutex; the hot path never sees the lock because the
/// handle caches the `&'static` cell. Metrics live for the process —
/// they are `Box::leak`ed on registration, which is bounded by the
/// number of distinct metric names in the codebase.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(&'static str, Metric)>>,
}

impl MetricsRegistry {
    fn with_entries<R>(&self, f: impl FnOnce(&mut Vec<(&'static str, Metric)>) -> R) -> R {
        // Registration writes complete before unlock, so a poisoned
        // table is still consistent and safe to reuse.
        f(&mut self.entries.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn resolve<T>(
        &self,
        name: &'static str,
        existing: impl Fn(Metric) -> Option<&'static T>,
        fresh: impl FnOnce() -> (&'static T, Metric),
    ) -> &'static T {
        self.with_entries(|entries| {
            for (n, metric) in entries.iter() {
                if *n == name {
                    if let Some(cell) = existing(*metric) {
                        return cell;
                    }
                }
            }
            let (cell, metric) = fresh();
            entries.push((name, metric));
            entries.sort_by_key(|(n, _)| *n);
            cell
        })
    }

    /// The counter registered under `name`, creating it on first use.
    /// If `name` is already taken by a different metric kind, a second
    /// entry of the requested kind is registered alongside it.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.resolve(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            },
            || {
                let cell = &*Box::leak(Box::new(Counter::new()));
                (cell, Metric::Counter(cell))
            },
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.resolve(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            },
            || {
                let cell = &*Box::leak(Box::new(Histogram::new()));
                (cell, Metric::Histogram(cell))
            },
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.resolve(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g),
                _ => None,
            },
            || {
                let cell = &*Box::leak(Box::new(Gauge::new()));
                (cell, Metric::Gauge(cell))
            },
        )
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.with_entries(|entries| entries.len())
    }

    /// Whether no metric has been registered (always true with the
    /// `telemetry` feature off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All metrics as one object, sorted by name: counters and gauges
    /// as integers, histograms as `{count, buckets: [[lo, count], …]}`
    /// with empty buckets omitted.
    pub fn dump(&self) -> serde::Value {
        self.with_entries(|entries| {
            let fields = entries
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => serde::Value::U64(c.get()),
                        Metric::Gauge(g) => serde::Value::U64(g.get()),
                        Metric::Histogram(h) => {
                            let counts = h.counts();
                            let buckets: Vec<serde::Value> = counts
                                .iter()
                                .enumerate()
                                .filter(|&(_, &n)| n > 0)
                                .map(|(i, &n)| {
                                    let (lo, _) = Histogram::bucket_bounds(i);
                                    serde::Value::Arr(vec![
                                        serde::Value::U64(lo),
                                        serde::Value::U64(n),
                                    ])
                                })
                                .collect();
                            serde::Value::Obj(vec![
                                ("count".to_owned(), serde::Value::U64(counts.iter().sum())),
                                ("buckets".to_owned(), serde::Value::Arr(buckets)),
                            ])
                        }
                    };
                    ((*name).to_owned(), value)
                })
                .collect();
            serde::Value::Obj(fields)
        })
    }
}

/// The process-wide [`MetricsRegistry`].
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// A `const`-constructible handle to a named [`Counter`].
///
/// With the `telemetry` feature off this is a zero-cost shell: every
/// method is an empty `#[inline(always)]` body and nothing is ever
/// registered. With it on, the first call resolves the counter through
/// [`registry`] and caches the reference.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    #[cfg(feature = "telemetry")]
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the metric called `name`.
    #[cfg(feature = "telemetry")]
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// A handle for the metric called `name`.
    #[cfg(not(feature = "telemetry"))]
    pub const fn new(name: &'static str) -> Self {
        LazyCounter { name }
    }

    /// The metric name this handle resolves.
    pub const fn metric_name(&self) -> &'static str {
        self.name
    }

    #[cfg(feature = "telemetry")]
    fn resolve(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n` events (no-op with the feature off).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn add(&self, n: u64) {
        self.resolve().add(n);
    }

    /// Adds `n` events (no-op with the feature off).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds one event (no-op with the feature off).
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count (0 with the feature off).
    #[cfg(feature = "telemetry")]
    pub fn get(&self) -> u64 {
        self.resolve().get()
    }

    /// The current count (0 with the feature off).
    #[cfg(not(feature = "telemetry"))]
    pub fn get(&self) -> u64 {
        0
    }
}

/// A `const`-constructible handle to a named [`Histogram`]; see
/// [`LazyCounter`] for the feature-gating contract.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    #[cfg(feature = "telemetry")]
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A handle for the metric called `name`.
    #[cfg(feature = "telemetry")]
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// A handle for the metric called `name`.
    #[cfg(not(feature = "telemetry"))]
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram { name }
    }

    /// The metric name this handle resolves.
    pub const fn metric_name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (no-op with the feature off).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn record(&self, value: u64) {
        self.cell
            .get_or_init(|| registry().histogram(self.name))
            .record(value);
    }

    /// Records one sample (no-op with the feature off).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn record(&self, _value: u64) {}
}

/// A `const`-constructible handle to a named [`Gauge`]; see
/// [`LazyCounter`] for the feature-gating contract.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    #[cfg(feature = "telemetry")]
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the metric called `name`.
    #[cfg(feature = "telemetry")]
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// A handle for the metric called `name`.
    #[cfg(not(feature = "telemetry"))]
    pub const fn new(name: &'static str) -> Self {
        LazyGauge { name }
    }

    /// The metric name this handle resolves.
    pub const fn metric_name(&self) -> &'static str {
        self.name
    }

    /// Raises the high-water mark (no-op with the feature off).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.cell
            .get_or_init(|| registry().gauge(self.name))
            .record_max(value);
    }

    /// Raises the high-water mark (no-op with the feature off).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn record_max(&self, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_is_monotonic() {
        let g = Gauge::new();
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(100);
        assert_eq!(g.get(), 100);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // The bucket contract: 0 → bucket 0; 2^(i-1)..=2^i-1 → bucket i.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64u32 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i as usize, "lo of {i}");
            assert_eq!(Histogram::bucket_index(hi), i as usize, "hi of {i}");
            assert_eq!(Histogram::bucket_bounds(i as usize), (lo, hi));
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every boundary value falls inside its own bucket's bounds.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_records_into_the_right_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let counts = h.counts();
        assert_eq!(h.count(), 5);
        assert_eq!(counts[0], 1); // the zero
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[3], 2); // 5 twice: [4, 7]
        assert_eq!(counts[10], 1); // 1000: [512, 1023]
    }

    #[test]
    fn registry_dedups_by_name_and_dumps_sorted() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("z.late");
        let b = reg.counter("z.late");
        assert!(std::ptr::eq(a, b), "same name must resolve to one cell");
        a.add(3);
        reg.gauge("a.early").record_max(9);
        reg.histogram("m.hist").record(5);
        let dump = reg.dump();
        let serde::Value::Obj(fields) = &dump else {
            panic!("dump must be an object");
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.early", "m.hist", "z.late"]);
        assert_eq!(dump.get("z.late"), Some(&serde::Value::U64(3)));
        assert_eq!(dump.get("a.early"), Some(&serde::Value::U64(9)));
        let hist = dump.get("m.hist").expect("histogram present");
        assert_eq!(hist.get("count"), Some(&serde::Value::U64(1)));
    }

    #[test]
    fn lazy_handles_match_the_feature_gate() {
        static PROBE: LazyCounter = LazyCounter::new("test.metrics.probe");
        assert_eq!(PROBE.metric_name(), "test.metrics.probe");
        PROBE.add(2);
        PROBE.inc();
        if crate::enabled() {
            assert_eq!(PROBE.get(), 3);
            assert!(!registry().is_empty());
        } else {
            assert_eq!(PROBE.get(), 0, "no-op build must record nothing");
        }
        static HIST: LazyHistogram = LazyHistogram::new("test.metrics.hist");
        HIST.record(8);
        static GAUGE: LazyGauge = LazyGauge::new("test.metrics.gauge");
        GAUGE.record_max(5);
    }
}
