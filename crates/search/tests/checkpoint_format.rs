//! Checkpoint wire-format properties: serde round-trips bit-exactly
//! for arbitrary checkpoints (all five cursor kinds, with and without
//! a best mapping), and *any* single-byte corruption of a saved file —
//! header or payload — is rejected at load time rather than silently
//! yielding a different checkpoint.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use ruby_arch::presets;
use ruby_mapspace::{Mapspace, MapspaceKind};
use ruby_search::checkpoint::{
    AnnealCursor, CheckpointCounters, Cursor, ExhaustiveCursor, PermutedCursor, RandomCursor,
    RandomPhase,
};
use ruby_search::{
    BestMapping, CheckpointError, Engine, SearchCheckpoint, SearchConfig, SearchStrategy,
};
use ruby_workload::ProblemShape;

/// A real best mapping to embed in checkpoints, found once by a tiny
/// deterministic search over the toy space.
fn sample_best() -> &'static BestMapping {
    static BEST: OnceLock<BestMapping> = OnceLock::new();
    BEST.get_or_init(|| {
        let space = Mapspace::new(
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
            MapspaceKind::RubyS,
        );
        let config = SearchConfig::builder()
            .seed(7)
            .threads(1)
            .strategy(SearchStrategy::Random)
            .max_evaluations(64)
            .no_termination()
            .build()
            .expect("valid config");
        Engine::new(&space)
            .with_config(config)
            .run()
            .best
            .expect("toy space has a valid mapping")
    })
}

/// A fresh file path per proptest case (cases run concurrently).
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "ruby-checkpoint-format-{}-{n}.ckpt",
        std::process::id()
    ));
    path
}

/// splitmix64, for deriving arbitrary-but-deterministic field values
/// from a single proptest-drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A finite, strictly positive cost derived from a mixed word.
fn cost(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / 1e6 + 0.5
}

fn build_cursor(kind: u8, state: &mut u64, len: usize) -> Cursor {
    match kind % 5 {
        0 => Cursor::Random(RandomCursor {
            phase: match mix(state) % 3 {
                0 => RandomPhase::Plain,
                1 => RandomPhase::Warmup,
                _ => RandomPhase::Fallback,
            },
            budget: (mix(state).is_multiple_of(2)).then(|| mix(state) % 1_000_000),
            rngs: (0..len)
                .map(|_| [mix(state), mix(state), mix(state), mix(state)])
                .collect(),
        }),
        1 => Cursor::Exhaustive(ExhaustiveCursor {
            budget: (mix(state).is_multiple_of(2)).then(|| mix(state) % 1_000_000),
            order: (0..len as u64).collect(),
            probe_done: (0..len).map(|_| mix(state).is_multiple_of(2)).collect(),
            oi: mix(state) % (len as u64 + 1),
            ordinal: mix(state) % 100_000,
            scanned: mix(state) % 100_000,
            probing: mix(state).is_multiple_of(2),
            pi: mix(state) % (len as u64 + 1),
            probe_cost: (0..len)
                .map(|_| {
                    if mix(state).is_multiple_of(3) {
                        f64::INFINITY.to_bits()
                    } else {
                        cost(state).to_bits()
                    }
                })
                .collect(),
        }),
        2 => Cursor::Anneal(AnnealCursor {
            rng: [mix(state), mix(state), mix(state), mix(state)],
            step: mix(state) % 100_000,
            temperature: cost(state),
            current_cost: cost(state),
            current: sample_best().mapping.clone(),
        }),
        // The permuted walk only ever serves the Plain and Warmup
        // roles (the Fallback role *is* the sampler path).
        3 => Cursor::Permuted(PermutedCursor {
            phase: if mix(state).is_multiple_of(2) {
                RandomPhase::Plain
            } else {
                RandomPhase::Warmup
            },
            budget: (mix(state).is_multiple_of(2)).then(|| mix(state) % 1_000_000),
            positions: (0..len)
                .map(|_| {
                    let start = mix(state) % 1_000_000;
                    (start, start + mix(state) % 1_000_000)
                })
                .collect(),
        }),
        _ => Cursor::Done {
            exhausted: mix(state).is_multiple_of(2),
        },
    }
}

fn build_checkpoint(seed: u64, kind: u8, with_best: bool) -> SearchCheckpoint {
    let mut state = seed;
    let len = (seed % 5) as usize + 1;
    let counters = CheckpointCounters {
        evaluations: mix(&mut state) % 1_000_000,
        valid: mix(&mut state) % 1_000_000,
        invalid: mix(&mut state) % 1_000_000,
        duplicates: mix(&mut state) % 1_000_000,
        pruned_subtrees: mix(&mut state) % 1_000_000,
        pruned_mappings: mix(&mut state) % 1_000_000,
        improvements: mix(&mut state) % 1_000_000,
        fails: mix(&mut state) % 1_000_000,
        worker_restarts: mix(&mut state) % 16,
        quarantined: mix(&mut state) % 16,
    };
    SearchCheckpoint {
        fingerprint: mix(&mut state),
        strategy: ["random", "exhaustive", "hybrid", "anneal", "random"][(kind % 5) as usize]
            .to_owned(),
        counters,
        best: with_best.then(|| sample_best().clone()),
        best_ordinal: mix(&mut state) % 1_000_000,
        trace: (0..len as u64).map(|i| (i * 7, cost(&mut state))).collect(),
        memo: (0..len as u64)
            .map(|i| (i, mix(&mut state), cost(&mut state).to_bits()))
            .collect(),
        poison: (0..len).map(|_| mix(&mut state)).collect(),
        cursor: build_cursor(kind, &mut state, len),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → load returns the identical checkpoint, including f64
    /// bits in traces, memo entries and cursor state.
    #[test]
    fn save_load_round_trips(seed in 0u64..u64::MAX, kind in 0u8..5, best_flag in 0u8..2) {
        let cp = build_checkpoint(seed, kind, best_flag == 1);
        let path = scratch();
        cp.save(&path).expect("save succeeds");
        let loaded = SearchCheckpoint::load(&path).expect("load succeeds");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(cp, loaded);
    }

    /// Flipping any single byte of a saved checkpoint — wherever it
    /// lands, header or payload — makes load fail. Nothing corrupted
    /// ever parses as a (different) checkpoint.
    #[test]
    fn any_single_byte_flip_is_rejected(seed in 0u64..u64::MAX, offset_seed in 0u64..u64::MAX) {
        let cp = build_checkpoint(seed, (seed % 5) as u8, seed % 2 == 0);
        let path = scratch();
        cp.save(&path).expect("save succeeds");
        let mut bytes = std::fs::read(&path).expect("readable");
        let at = (offset_seed % bytes.len() as u64) as usize;
        bytes[at] ^= 0x2A;
        std::fs::write(&path, &bytes).expect("writable");
        let result = SearchCheckpoint::load(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(result.is_err(), "byte {} flip must not load", at);
    }

    /// Truncating a saved checkpoint at any interior point is caught
    /// by the header's byte count (or the missing header itself).
    #[test]
    fn any_truncation_is_rejected(seed in 0u64..u64::MAX, cut_seed in 0u64..u64::MAX) {
        let cp = build_checkpoint(seed, (seed % 5) as u8, false);
        let path = scratch();
        cp.save(&path).expect("save succeeds");
        let bytes = std::fs::read(&path).expect("readable");
        let cut = (cut_seed % (bytes.len() as u64 - 1)) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("writable");
        let result = SearchCheckpoint::load(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(result.is_err(), "truncation at {} must not load", cut);
    }
}

#[test]
fn future_schema_reports_a_version_mismatch() {
    let cp = build_checkpoint(99, 0, true);
    let path = scratch();
    cp.save(&path).expect("save succeeds");
    let raw = std::fs::read_to_string(&path).expect("readable");
    let bumped = raw.replacen("{\"schema\":1,", "{\"schema\":999,", 1);
    assert_ne!(raw, bumped, "replacement must hit the header");
    std::fs::write(&path, bumped).expect("writable");
    match SearchCheckpoint::load(&path) {
        Err(CheckpointError::SchemaMismatch {
            found: 999,
            expected,
        }) => {
            assert_eq!(expected, ruby_search::CHECKPOINT_SCHEMA);
        }
        other => panic!("expected a schema mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_cursor_kind_is_rejected_not_misparsed() {
    // kind 4 is the Done cursor whose `"kind":"done"` tag the test
    // rewrites below.
    let cp = build_checkpoint(7, 4, false);
    let path = scratch();
    cp.save(&path).expect("save succeeds");
    let raw = std::fs::read_to_string(&path).expect("readable");
    let (_, payload) = raw.split_once('\n').expect("two lines");
    let payload = payload
        .trim_end()
        .replacen("\"kind\":\"done\"", "\"kind\":\"genetic\"", 1);
    let header = format!(
        "{{\"schema\":{},\"crc\":{},\"bytes\":{}}}",
        ruby_search::CHECKPOINT_SCHEMA,
        checkpoint_crc(payload.as_bytes()),
        payload.len()
    );
    std::fs::write(&path, format!("{header}\n{payload}\n")).expect("writable");
    match SearchCheckpoint::load(&path) {
        Err(CheckpointError::Corrupt(msg)) => {
            assert!(msg.contains("genetic"), "message names the bad kind: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// CRC-32 (IEEE), mirrored from the checkpoint module so the test can
/// re-stamp a tampered payload with a *valid* header — proving the
/// rejection above comes from the payload parser, not the CRC gate.
fn checkpoint_crc(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}
