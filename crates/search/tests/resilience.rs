//! Kill-and-resume equivalence plus fault-injection coverage.
//!
//! The load-bearing property: a run interrupted at a deterministic
//! trip-wire and resumed from its checkpoint reaches the *same* final
//! outcome (best mapping, cost bits, and every deterministic counter)
//! as the uninterrupted run. Checkpoints are taken at barriers, so the
//! resumed run replays the in-flight batch bit-identically.
//!
//! Fault-injection sites are process-global, so tests that arm them
//! take the `INJECTION` write lock while everything else holds a read
//! lock — an armed `search.eval` panic must not leak into a
//! concurrently running equivalence test.

use std::path::PathBuf;
use std::sync::{PoisonError, RwLock};

use ruby_arch::presets;
use ruby_mapspace::{Mapspace, MapspaceKind};
use ruby_search::{Engine, SearchConfig, SearchOutcome, SearchStrategy, StopToken};
use ruby_workload::ProblemShape;

static INJECTION: RwLock<()> = RwLock::new(());

fn shield() -> std::sync::RwLockReadGuard<'static, ()> {
    INJECTION.read().unwrap_or_else(PoisonError::into_inner)
}

fn toy_space() -> Mapspace {
    Mapspace::new(
        presets::toy_linear(16, 1024),
        ProblemShape::rank1("d", 113),
        MapspaceKind::RubyS,
    )
}

/// A unique checkpoint path per test, cleaned up by the caller.
fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "ruby-resilience-{}-{name}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn config_for(strategy: SearchStrategy) -> SearchConfig {
    SearchConfig::builder()
        .seed(42)
        .threads(1)
        .strategy(strategy)
        .max_evaluations(2_000)
        .no_termination()
        .build()
        .expect("valid config")
}

/// The deterministic fields two equivalent outcomes must agree on
/// (stop metadata is intentionally excluded: the interrupted run is
/// *supposed* to differ there until resumed).
fn assert_equivalent(a: &SearchOutcome, b: &SearchOutcome, what: &str) {
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(a.valid, b.valid, "{what}: valid");
    assert_eq!(a.invalid, b.invalid, "{what}: invalid");
    assert_eq!(a.duplicates, b.duplicates, "{what}: duplicates");
    assert_eq!(a.pruned_subtrees, b.pruned_subtrees, "{what}: subtrees");
    assert_eq!(a.pruned_mappings, b.pruned_mappings, "{what}: mappings");
    assert_eq!(a.exhausted, b.exhausted, "{what}: exhausted");
    assert_eq!(a.trace, b.trace, "{what}: trace");
    match (&a.best, &b.best) {
        (Some(x), Some(y)) => {
            assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{what}: best cost bits");
            assert_eq!(x.mapping, y.mapping, "{what}: best mapping");
        }
        (None, None) => {}
        _ => panic!("{what}: one run found a best, the other did not"),
    }
}

/// Runs `strategy` three ways — uninterrupted, tripped at ~50% of the
/// uninterrupted run's evaluations, and resumed from the checkpoint —
/// and demands bit-identical final state.
fn kill_and_resume(strategy: SearchStrategy) {
    let _guard = shield();
    let space = toy_space();
    let path = scratch(strategy.name());

    let baseline = Engine::new(&space).with_config(config_for(strategy)).run();
    assert!(baseline.evaluations > 0, "baseline did no work");

    let token = StopToken::new();
    token.trip_after_evaluations(baseline.evaluations / 2);
    let interrupted = Engine::new(&space)
        .with_config(config_for(strategy))
        .with_stop_token(token)
        .with_checkpoint(&path, 10_000)
        .try_run()
        .expect("interrupted run still yields an outcome");
    assert!(
        interrupted.stopped_early,
        "{}: the trip-wire should have fired",
        strategy.name()
    );
    assert!(
        interrupted.stop_reason.is_some(),
        "{}: a stopped run names its reason",
        strategy.name()
    );
    assert!(path.exists(), "{}: no checkpoint written", strategy.name());

    let resumed = Engine::new(&space)
        .with_config(config_for(strategy))
        .with_checkpoint(&path, 10_000)
        .resume()
        .try_run()
        .expect("resume succeeds");
    assert!(
        !resumed.stopped_early,
        "{}: the resumed run ran to completion",
        strategy.name()
    );
    assert_equivalent(&baseline, &resumed, strategy.name());

    // Resuming again replays the terminal checkpoint instead of
    // recomputing the finished run.
    let replayed = Engine::new(&space)
        .with_config(config_for(strategy))
        .with_checkpoint(&path, 10_000)
        .resume()
        .try_run()
        .expect("replaying a finished run succeeds");
    assert_equivalent(&resumed, &replayed, "done-replay");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn random_kill_and_resume_matches_uninterrupted() {
    kill_and_resume(SearchStrategy::Random);
}

#[test]
fn exhaustive_kill_and_resume_matches_uninterrupted() {
    kill_and_resume(SearchStrategy::Exhaustive);
}

#[test]
fn hybrid_kill_and_resume_matches_uninterrupted() {
    kill_and_resume(SearchStrategy::Hybrid);
}

#[test]
fn anneal_kill_and_resume_matches_uninterrupted() {
    kill_and_resume(SearchStrategy::Anneal);
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_config() {
    let _guard = shield();
    let space = toy_space();
    let path = scratch("config-mismatch");
    let token = StopToken::new();
    token.trip_after_evaluations(100);
    let _ = Engine::new(&space)
        .with_config(config_for(SearchStrategy::Random))
        .with_stop_token(token)
        .with_checkpoint(&path, 10_000)
        .try_run()
        .expect("interrupted run still yields an outcome");
    assert!(path.exists());

    let other = SearchConfig::builder()
        .seed(43) // different seed -> different fingerprint
        .threads(1)
        .strategy(SearchStrategy::Random)
        .max_evaluations(2_000)
        .no_termination()
        .build()
        .expect("valid config");
    let err = Engine::new(&space)
        .with_config(other)
        .with_checkpoint(&path, 10_000)
        .resume()
        .try_run()
        .expect_err("a mismatched fingerprint must not resume");
    assert!(
        matches!(err, ruby_search::CheckpointError::ConfigMismatch),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_without_a_file_starts_fresh() {
    let _guard = shield();
    let space = toy_space();
    let path = scratch("missing");
    let fresh = Engine::new(&space)
        .with_config(config_for(SearchStrategy::Random))
        .with_checkpoint(&path, 10_000)
        .resume()
        .try_run()
        .expect("a missing checkpoint means a fresh start, not an error");
    let baseline = Engine::new(&space)
        .with_config(config_for(SearchStrategy::Random))
        .run();
    assert_equivalent(&baseline, &fresh, "fresh-start");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn max_seconds_deadline_stops_the_run() {
    let _guard = shield();
    // The permuted walk exhausts the toy space in well under the
    // deadline, so this test needs a space large enough that only the
    // clock can stop it.
    let space = Mapspace::new(
        presets::eyeriss_like(14, 12),
        ProblemShape::conv("pw", 1, 256, 64, 28, 28, 1, 1, (1, 1)),
        MapspaceKind::RubyS,
    );
    let config = SearchConfig::builder()
        .seed(7)
        .threads(1)
        .strategy(SearchStrategy::Random)
        .max_evaluations(50_000_000)
        .no_termination()
        .max_seconds(0.02)
        .build()
        .expect("valid config");
    let outcome = Engine::new(&space).with_config(config).run();
    assert!(outcome.stopped_early, "the deadline should have fired");
    assert_eq!(outcome.stop_reason.as_deref(), Some("deadline"));
    assert!(
        outcome.evaluations < 50_000_000,
        "the run drained long before the budget"
    );
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;

    fn inject() -> std::sync::RwLockWriteGuard<'static, ()> {
        INJECTION.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Keeps injected panics from spamming the test output.
    fn quiet_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("failpoint"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("failpoint"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn injected_eval_panics_are_contained_and_counted() {
        let _guard = inject();
        quiet_panics();
        ruby_failpoints::reset();
        // Panic on every fresh evaluation from the 10th on; a generous
        // restart budget lets the run absorb all of them.
        assert!(ruby_failpoints::arm("search.eval", "panic@10"));
        let space = toy_space();
        let config = SearchConfig::builder()
            .seed(42)
            .threads(1)
            .strategy(SearchStrategy::Random)
            .max_evaluations(2_000)
            .no_termination()
            .max_worker_restarts(100_000)
            .build()
            .expect("valid config");
        let outcome = Engine::new(&space).with_config(config).run();
        ruby_failpoints::reset();
        assert!(outcome.worker_restarts >= 1, "the panics were not recorded");
        assert!(outcome.quarantined >= 1, "nothing was quarantined");
        assert!(
            !outcome.stopped_early,
            "contained panics must not end the run"
        );
        assert!(
            outcome.best.is_some(),
            "the clean evaluations before the failpoint armed still count"
        );
        assert_eq!(
            outcome.evaluations,
            outcome.valid + outcome.invalid + outcome.duplicates,
            "the accounting identity must survive quarantine"
        );
    }

    #[test]
    fn injected_eval_panics_in_the_sweep_are_contained() {
        let _guard = inject();
        quiet_panics();
        ruby_failpoints::reset();
        assert!(ruby_failpoints::arm("search.eval", "panic@20"));
        let space = toy_space();
        let outcome = Engine::new(&space)
            .with_config(config_for(SearchStrategy::Exhaustive))
            .run();
        ruby_failpoints::reset();
        assert!(outcome.worker_restarts >= 1);
        assert!(outcome.quarantined >= 1);
        assert!(outcome.best.is_some());
    }

    #[test]
    fn exhausted_restart_budget_stops_the_run_gracefully() {
        let _guard = inject();
        quiet_panics();
        ruby_failpoints::reset();
        // Every evaluation panics: the per-worker restart budget drains
        // and the run stops early instead of aborting the process.
        assert!(ruby_failpoints::arm("search.eval", "panic"));
        let space = toy_space();
        let config = SearchConfig::builder()
            .seed(42)
            .threads(1)
            .strategy(SearchStrategy::Random)
            .max_evaluations(2_000)
            .no_termination()
            .max_worker_restarts(3)
            .build()
            .expect("valid config");
        let outcome = Engine::new(&space).with_config(config).run();
        ruby_failpoints::reset();
        assert!(outcome.stopped_early);
        assert_eq!(outcome.stop_reason.as_deref(), Some("worker-failures"));
        assert!(outcome.worker_restarts >= 3);
    }

    #[test]
    fn simulated_alloc_failure_degrades_to_no_dedup() {
        let _guard = inject();
        ruby_failpoints::reset();
        assert!(ruby_failpoints::arm("search.memo.alloc", "err"));
        let space = toy_space();
        let outcome = Engine::new(&space)
            .with_config(config_for(SearchStrategy::Random))
            .run();
        ruby_failpoints::reset();
        // Without a memo cache nothing deduplicates, but the search
        // completes and the identity still holds.
        assert_eq!(outcome.duplicates, 0);
        assert!(outcome.best.is_some());
        assert_eq!(
            outcome.evaluations,
            outcome.valid + outcome.invalid + outcome.duplicates
        );
    }

    #[test]
    fn torn_checkpoint_write_leaves_the_previous_file_intact() {
        let _guard = inject();
        ruby_failpoints::reset();
        let space = toy_space();
        let path = scratch("torn");

        // First, a good checkpoint from an interrupted run.
        let token = StopToken::new();
        token.trip_after_evaluations(500);
        let _ = Engine::new(&space)
            .with_config(config_for(SearchStrategy::Random))
            .with_stop_token(token)
            .with_checkpoint(&path, 10_000)
            .try_run()
            .expect("interrupted run still yields an outcome");
        let good = std::fs::read(&path).expect("checkpoint written");

        // Now resume, but tear every subsequent checkpoint write after
        // 64 bytes: the drain save must not clobber the good file.
        assert!(ruby_failpoints::arm("artifact.write", "torn:64"));
        let token = StopToken::new();
        token.trip_after_evaluations(1_000);
        let _ = Engine::new(&space)
            .with_config(config_for(SearchStrategy::Random))
            .with_stop_token(token)
            .with_checkpoint(&path, 10_000)
            .resume()
            .try_run()
            .expect("resume succeeds even when its own saves tear");
        ruby_failpoints::reset();

        let after = std::fs::read(&path).expect("file still present");
        assert_eq!(good, after, "a torn write must leave the old bytes");
        // And the file still loads as a valid checkpoint.
        ruby_search::SearchCheckpoint::load(&path).expect("still a valid checkpoint");
        let _ = std::fs::remove_file(&path);
    }
}
