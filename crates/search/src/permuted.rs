//! The permuted batched sampling driver: the default random path when
//! the space tabulates.
//!
//! Instead of rejection-sampling with a dedup memo, the driver walks the
//! deduplicated enumeration index space (`EnumTables` leaves) in the
//! order of a seeded format-preserving permutation
//! ([`ruby_mapspace::FeistelPermutation`]). Every candidate is therefore
//! distinct by construction — zero duplicates, no memo probes, no
//! rejection waste — and the walk's position *is* the resume cursor:
//! [`crate::checkpoint::PermutedCursor`] stores one `(position, end)`
//! pair per worker, and re-seeding the permutation regenerates the
//! remaining visit sequence bit-identically.
//!
//! Candidates are decoded into a [`BatchEvalContext`] (SoA layout,
//! [`BATCH`] lanes), screened by the branchless rejection ladder, and
//! only survivors pay the full cost pass — and of those, only
//! improvements materialize a full [`ruby_model::CostReport`]; the other
//! valid lanes stop at the allocation-free [`CostSummary`], whose
//! objective cost is bit-identical (see the batch differential test).
//!
//! The per-candidate protocol (budget reservation with undo, interrupt
//! polls before reservations, progress strides, victory-counter
//! termination, panic quarantine with supervised restarts) mirrors
//! `worker_loop` in `lib.rs`; counters retain their exact meanings, with
//! `duplicates` pinned at zero. Two intentional batch-granularity
//! deviations: interrupt polls and periodic checkpoints happen at batch
//! barriers (so a stop can overshoot by up to `BATCH - 1` candidates,
//! deterministically), and when the worker-restart budget drains
//! mid-batch the already-charged lanes are still classified so the
//! `evaluations = valid + invalid + duplicates` identity holds.

use ruby_mapspace::{EnumTables, Mapspace, PermutedIterator};
use ruby_model::{BatchEvalContext, BatchVerdict, CostSummary, EvalContext, BATCH};
use ruby_telemetry::LazyCounter;

use crate::checkpoint::{Checkpointer, Cursor, PermutedCursor, RandomPhase, SearchCheckpoint};
use crate::sync::Ordering;
use crate::{
    engine, quarantine, record_improvement, try_improve, SearchConfig, Shared,
    STOP_REASON_WORKER_FAILURES,
};

/// Permuted walks launched (the space tabulated) vs. rejected back to
/// the rejection sampler. No-ops unless the `telemetry` feature is on.
static WALK_RUNS: LazyCounter = LazyCounter::new("search.permuted.runs");
static WALK_FALLBACKS: LazyCounter = LazyCounter::new("search.permuted.fallbacks");

/// Attempts the permuted batched walk over `mapspace`.
///
/// Returns `None` when the space cannot be tabulated (table build
/// failure or an index space wider than `u64`); the caller falls back to
/// the rejection sampler, and because both failure modes are
/// deterministic the same config resumes onto the same path. Otherwise
/// returns whether the walk provably covered its whole index space
/// (ran dry on every worker without an early stop).
pub(crate) fn run(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    phase: RandomPhase,
    cpr: Option<&Checkpointer>,
    resume: Option<Vec<(u64, u64)>>,
) -> Option<bool> {
    let Some(tables) = mapspace.enum_tables() else {
        WALK_FALLBACKS.add(1);
        return None;
    };
    let Some(total) = tables.exact_total_leaves() else {
        WALK_FALLBACKS.add(1);
        return None;
    };
    WALK_RUNS.add(1);
    let ranges = match resume {
        Some(positions) => positions,
        None => partition(total, config.threads),
    };
    let final_positions: Vec<(u64, u64)> = if config.threads == 1 {
        // Only the single-threaded worker checkpoints in-loop: with one
        // thread the loop is deterministic, so the periodic snapshots
        // sit on the uninterrupted run's own trajectory.
        let range = ranges.first().copied().unwrap_or((0, 0));
        vec![walk_worker(
            mapspace, tables, config, shared, budget, range, phase, cpr,
        )]
    } else {
        std::thread::scope(|scope| {
            let tables = &tables;
            let handles: Vec<_> = ranges
                .iter()
                .map(|&range| {
                    scope.spawn(move || {
                        walk_worker(mapspace, tables, config, shared, budget, range, phase, None)
                    })
                })
                .collect();
            handles
                .into_iter()
                // A join error means a panic escaped the supervised
                // worker body (a harness bug); degrade to an empty range.
                .map(|h| h.join().unwrap_or((0, 0)))
                .collect()
        })
    };
    if shared.is_stopped_early() {
        if let Some(cpr) = cpr {
            cpr.save(SearchCheckpoint::capture(
                shared,
                config,
                Cursor::Permuted(PermutedCursor {
                    phase,
                    budget,
                    positions: final_positions,
                }),
            ));
        }
        return Some(false);
    }
    // The walk covered its whole index space only when every worker ran
    // dry and nothing (budget, termination) raised the stop flag first.
    // ordering: Relaxed — read after the join barrier above.
    let complete = !shared.stop.load(Ordering::Relaxed)
        && final_positions.iter().all(|&(pos, end)| pos == end);
    Some(complete)
}

/// Splits `[0, total)` into one contiguous range per worker. Disjoint
/// position ranges under one shared permutation give disjoint candidate
/// sets, so workers never collide and never need the memo.
fn partition(total: u64, threads: usize) -> Vec<(u64, u64)> {
    let t = threads as u64;
    let chunk = total / t;
    let rem = total % t;
    (0..t)
        .map(|i| {
            let start = i * chunk + i.min(rem);
            let len = chunk + u64::from(i < rem);
            (start, start + len)
        })
        .collect()
}

/// One supervised walk worker (the permuted analogue of `worker` in
/// `lib.rs`): the loop body runs under `catch_unwind`, and a panic that
/// escapes the per-lane containment in [`score_lane`] quarantines the
/// candidate in flight and restarts the body — up to
/// [`SearchConfig::max_worker_restarts`] times, after which the run
/// drains with `stop_reason: "worker-failures"`. Returns the final
/// `(position, end)` pair for the drain checkpoint.
#[allow(clippy::too_many_arguments)]
fn walk_worker(
    mapspace: &Mapspace,
    tables: &EnumTables,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    range: (u64, u64),
    phase: RandomPhase,
    cpr: Option<&Checkpointer>,
) -> (u64, u64) {
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let mut batch = BatchEvalContext::new(&ctx);
    // justified: the caller proved the tables tabulate (its
    // exact_total_leaves returned Some), so the iterator constructs.
    let mut walk = PermutedIterator::new(tables, config.seed, range.0, range.1)
        .expect("caller verified the tables tabulate");
    shared.progress_thread_started();
    let mut restarts_left = config.max_worker_restarts;
    loop {
        let mut last_key: Option<u64> = None;
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            walk_loop(
                config,
                shared,
                budget,
                &mut batch,
                &mut walk,
                phase,
                cpr,
                &mut restarts_left,
                &mut last_key,
            )
        }));
        match body {
            Ok(()) => break,
            Err(_) => {
                // Best-effort accounting, as in `worker`: when the panic
                // struck outside the per-lane containment (decode or
                // screen), the charged-but-unclassified lanes stay a
                // one-off slack in the accounting identity.
                if let Some(key) = last_key {
                    quarantine(shared, key);
                }
                // ordering: Relaxed — statistics counter, read after the
                // join barrier.
                shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if restarts_left == 0 {
                    shared.mark_stopped_early(STOP_REASON_WORKER_FAILURES);
                    break;
                }
                restarts_left -= 1;
            }
        }
    }
    shared.progress_thread_stopped();
    (walk.position(), walk.end())
}

#[allow(clippy::too_many_arguments)]
fn walk_loop(
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    batch: &mut BatchEvalContext<'_, '_>,
    walk: &mut PermutedIterator<'_>,
    phase: RandomPhase,
    cpr: Option<&Checkpointer>,
    restarts_left: &mut u64,
    last_key: &mut Option<u64>,
) {
    // The plain random path skips the memo entirely — the walk itself
    // guarantees zero duplicates. Hybrid-warmup evaluations still insert
    // (never probe) so the enumeration leg dedups against them.
    let keep_memo = phase != RandomPhase::Plain;
    let mut ordinals = [0u64; BATCH];
    let mut verdicts = [BatchVerdict::RejectFanout; BATCH];
    let mut saved_epoch = match cpr {
        // ordering: Relaxed — value-only counter read at a barrier.
        Some(cpr) => shared.evals.load(Ordering::Relaxed) / cpr.stride(),
        None => 0,
    };
    // ordering: Relaxed — the stop flag is advisory: seeing it late only
    // costs part of a batch, and the spawning scope's join is the real
    // synchronization point for the final counter reads.
    while !shared.stop.load(Ordering::Relaxed) {
        *last_key = None;
        if walk.position() == walk.end() {
            break;
        }
        if let Some(cpr) = cpr {
            // Batch barriers advance the counter by up to BATCH per
            // round, so the periodic save fires on stride-epoch
            // crossings rather than exact multiples.
            // ordering: Relaxed — value-only counter read; with one
            // thread (the only checkpointing mode) this loop is the
            // only writer.
            let done = shared.evals.load(Ordering::Relaxed);
            let epoch = done / cpr.stride();
            if done > 0 && epoch > saved_epoch {
                saved_epoch = epoch;
                cpr.save(SearchCheckpoint::capture(
                    shared,
                    config,
                    Cursor::Permuted(PermutedCursor {
                        phase,
                        budget,
                        positions: vec![(walk.position(), walk.end())],
                    }),
                ));
            }
        }
        // Decode up to a batch of candidates; the walk only advances for
        // candidates whose budget reservation succeeded.
        batch.clear();
        let mut dry = false;
        while !batch.is_full() {
            // Interrupt poll sits before the budget reservation (exactly
            // like worker_loop) so stop tokens and deadlines fire
            // per-candidate even when the whole walk fits in one batch,
            // and draining never needs an undo. Lanes already committed
            // this round are still classified below, so the accounting
            // identity holds and the drained cursor stays exact.
            if shared.check_interrupt() {
                break;
            }
            // ordering: Relaxed — budget reservation counter; only its
            // arithmetic value matters, no payload rides on it.
            let evals = shared.evals.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(max) = budget {
                if evals > max {
                    // Undo the reservation so the reported total never
                    // exceeds the cap, however many threads raced here.
                    // ordering: Relaxed — same counter/flag discipline
                    // as the reservation above.
                    shared.evals.fetch_sub(1, Ordering::Relaxed);
                    shared.stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            if walk.next_into(batch.slot()).is_none() {
                // This worker's slice of the walk ran dry: hand the
                // unused reservation back.
                // ordering: Relaxed — same counter discipline as above.
                shared.evals.fetch_sub(1, Ordering::Relaxed);
                dry = true;
                break;
            }
            // One masked branch per candidate; the publish itself runs
            // once per stride per thread (see worker_loop).
            if evals & (engine::PROGRESS_STRIDE - 1) == 0 {
                shared.publish_progress();
            }
            ordinals[batch.len()] = evals;
            batch.commit();
        }
        let lanes = batch.len();
        if lanes > 0 {
            verdicts[..lanes].copy_from_slice(batch.screen());
        }
        for lane in 0..lanes {
            let valid = matches!(verdicts[lane], BatchVerdict::Valid { .. });
            match score_lane(batch, lane, valid) {
                LaneScore::Invalid => {
                    // ordering: Relaxed — statistics counter, read only
                    // after the thread join barrier.
                    shared.invalid.fetch_add(1, Ordering::Relaxed);
                    if keep_memo {
                        if let Some(memo) = &shared.memo {
                            memo.insert(batch.mapping(lane).canonical_key(), f64::INFINITY);
                        }
                    }
                }
                LaneScore::Panicked => {
                    quarantine(shared, batch.mapping(lane).canonical_key());
                    // ordering: Relaxed — statistics counter, read after
                    // the join barrier.
                    shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    if *restarts_left == 0 {
                        // Drain — but finish classifying the lanes
                        // already charged to the budget so the
                        // accounting identity holds.
                        shared.mark_stopped_early(STOP_REASON_WORKER_FAILURES);
                    } else {
                        *restarts_left -= 1;
                    }
                }
                LaneScore::Valid(summary) => {
                    // ordering: Relaxed — statistics counter, read only
                    // after the thread join barrier.
                    shared.valid.fetch_add(1, Ordering::Relaxed);
                    let cost = config.objective.cost_of_summary(&summary);
                    if keep_memo {
                        if let Some(memo) = &shared.memo {
                            memo.insert(batch.mapping(lane).canonical_key(), cost);
                        }
                    }
                    let mut improved = false;
                    if try_improve(shared, cost) {
                        // Only improvements materialize the full report;
                        // its cost quantities are bit-identical to the
                        // summary's (batch differential test). The key
                        // guards the uncontained report/record calls.
                        *last_key = Some(batch.mapping(lane).canonical_key());
                        let report = batch.report(lane);
                        improved = record_improvement(
                            shared,
                            config,
                            batch.mapping(lane),
                            report,
                            cost,
                            ordinals[lane],
                        );
                        *last_key = None;
                    }
                    if improved {
                        // ordering: Relaxed — approximate victory-counter
                        // reset (Timeloop semantics, see worker_loop).
                        shared.fails.store(0, Ordering::Relaxed);
                    } else {
                        // ordering: Relaxed — approximate victory counter
                        // feeding the advisory stop flag.
                        let fails = shared.fails.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(limit) = config.termination {
                            if fails >= limit {
                                // ordering: Relaxed — advisory stop flag.
                                shared.stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        }
        if dry {
            break;
        }
    }
}

/// How one lane scored, with panics contained (the batched analogue of
/// [`crate::Scored`]; the summary replaces the full report).
enum LaneScore {
    Valid(CostSummary),
    Invalid,
    Panicked,
}

/// The per-lane model-call site: runs the `search.eval` failpoint (so
/// resilience tests can inject evaluation panics on this path too) and
/// summarizes screened-valid lanes.
fn score_lane(batch: &BatchEvalContext<'_, '_>, lane: usize, valid: bool) -> LaneScore {
    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(
            ruby_failpoints::hit("search.eval"),
            ruby_failpoints::Action::Panic
        ) {
            // justified: deliberate: this is the injected
            // fault the supervised workers must recover from.
            panic!("failpoint search.eval: injected evaluation panic");
        }
        valid.then(|| batch.summary(lane))
    }));
    match scored {
        Ok(Some(summary)) => LaneScore::Valid(summary),
        Ok(None) => LaneScore::Invalid,
        Err(payload) => {
            // Silence the payload; the panic is contained and accounted
            // for via quarantine at the call site.
            drop(payload);
            LaneScore::Panicked
        }
    }
}
