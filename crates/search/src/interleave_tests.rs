//! Bounded-exhaustive interleaving checks for the two lock-free
//! protocols in this crate, driven by the `ruby-analysis` mini-loom.
//!
//! Under `cfg(test)` the crate's atomics come from the interleaving
//! shim (see the `sync` module in `lib.rs`), so [`crate::MemoCache`]
//! and [`crate::try_improve`] run here *unmodified* — every schedule
//! the explorer generates is a real execution of the production code,
//! with a context switch forced before each atomic access.

use ruby_analysis::interleave::Explorer;

use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::{
    try_improve, MemoCache, SearchConfig, SearchStrategy, Shared, STOP_REASON_DEADLINE,
    STOP_REASON_REQUESTED,
};

/// A `Shared` without the memo cache (its 2^18 slots would dominate
/// per-schedule setup cost and are exercised separately).
fn bare_shared() -> Shared {
    Shared::new(&SearchConfig {
        dedup: false,
        // Irrelevant to the protocols; fixed for explicitness.
        strategy: SearchStrategy::Random,
        ..SearchConfig::default()
    })
}

#[test]
fn memo_same_key_inserts_never_tear_and_exactly_one_wins() {
    let report = Explorer::new(50_000).explore(|sched| {
        let memo = MemoCache::new(4);
        let m = &memo;
        sched.run(vec![
            Box::new(move || m.insert(42, 1.0)),
            Box::new(move || m.insert(42, 2.0)),
        ]);
        // Outside the exploration the shim passes through, so this
        // probe reads the settled state: exactly one insert published,
        // and the published pair is never torn or half-written.
        let got = memo.probe(42);
        assert!(
            got == Some(1.0) || got == Some(2.0),
            "torn or lost publication: {got:?}"
        );
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn memo_reader_racing_a_writer_sees_none_or_the_full_value() {
    let report = Explorer::new(50_000).explore(|sched| {
        let memo = MemoCache::new(4);
        let m = &memo;
        sched.run(vec![
            Box::new(move || m.insert(7, 4.5)),
            Box::new(move || {
                // A concurrent probe may land before the claim, between
                // claim and publication (NOT_READY reads as a miss), or
                // after — but it must never surface anything else.
                let got = m.probe(7);
                assert!(got.is_none() || got == Some(4.5), "torn read: {got:?}");
            }),
        ]);
        assert_eq!(memo.probe(7), Some(4.5), "publication lost");
    });
    assert!(report.complete, "schedule tree must be exhausted");
}

#[test]
fn memo_colliding_keys_both_survive_the_probe_chain() {
    // bits = 4 → 16 slots, mask 15: keys 1 and 17 share base slot 1, so
    // the two writers fight over the same probe window.
    let report = Explorer::new(50_000).explore(|sched| {
        let memo = MemoCache::new(4);
        let m = &memo;
        sched.run(vec![
            Box::new(move || m.insert(1, 1.0)),
            Box::new(move || m.insert(17, 17.0)),
        ]);
        assert_eq!(memo.probe(1), Some(1.0));
        assert_eq!(memo.probe(17), Some(17.0));
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn best_tracker_two_racing_improvements_settle_on_the_min() {
    let report = Explorer::new(50_000).explore(|sched| {
        let shared = bare_shared();
        let s = &shared;
        sched.run(vec![
            Box::new(move || {
                // The global minimum always wins its CAS loop
                // eventually, so it must report an improvement (or an
                // exact tie with itself) under every schedule.
                assert!(try_improve(s, 1.0), "the minimum must improve");
            }),
            Box::new(move || {
                let _ = try_improve(s, 2.0);
            }),
        ]);
        let best = f64::from_bits(shared.best_bits.load(crate::sync::Ordering::Relaxed));
        assert_eq!(best, 1.0, "best cost regressed or lost an update");
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn best_tracker_exact_tie_still_reports_improvable() {
    // Two threads with the same cost: whoever publishes second must
    // still get `true` (ties proceed to the record lock for canonical
    // tie-breaking), and the word must hold exactly that cost.
    let report = Explorer::new(50_000).explore(|sched| {
        let shared = bare_shared();
        let s = &shared;
        sched.run(vec![
            Box::new(move || assert!(try_improve(s, 3.5))),
            Box::new(move || assert!(try_improve(s, 3.5))),
        ]);
        let best = f64::from_bits(shared.best_bits.load(crate::sync::Ordering::Relaxed));
        assert_eq!(best, 3.5);
    });
    assert!(report.complete, "schedule tree must be exhausted");
}

#[test]
fn stop_latch_racing_interrupts_keep_exactly_one_reason() {
    // Two interrupt sources latch concurrently while a strategy polls.
    // The protocol (see `Shared::mark_stopped_early`) promises: the
    // latch never unlatches, the strategies' stop flag is raised, and
    // the recorded reason is whichever cause won the first CAS — never
    // zero, never a blend.
    let report = Explorer::new(50_000).explore(|sched| {
        let shared = bare_shared();
        let s = &shared;
        sched.run(vec![
            Box::new(move || s.mark_stopped_early(STOP_REASON_REQUESTED)),
            Box::new(move || s.mark_stopped_early(STOP_REASON_DEADLINE)),
            Box::new(move || {
                // A poll that observes the latch must keep observing it.
                if s.is_stopped_early() {
                    assert!(s.is_stopped_early(), "stop latch unlatched");
                }
            }),
        ]);
        assert!(shared.is_stopped_early());
        assert!(shared.stop.load(Ordering::Relaxed), "stop flag not raised");
        let reason = shared.stop_reason.load(Ordering::Relaxed);
        assert!(
            reason == STOP_REASON_REQUESTED || reason == STOP_REASON_DEADLINE,
            "reason lost or blended: {reason}"
        );
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn stop_latch_cells_reduced_to_shim_atomics_first_cas_wins() {
    // The same latch, distilled to its two cells — a shim `AtomicBool`
    // flag and a shim `AtomicU64` reason word — so the explorer checks
    // the cell-level protocol in isolation: flag stores are idempotent
    // and the reason CAS admits exactly one winner.
    let report = Explorer::new(50_000).explore(|sched| {
        let latch = AtomicBool::new(false);
        let reason = AtomicU64::new(0);
        let (l, r) = (&latch, &reason);
        let arm = |cause: u64| {
            move || {
                // ordering: Relaxed — mirrors mark_stopped_early: the
                // latch is advisory; joins are the sync point.
                l.store(true, Ordering::Relaxed);
                let _ = r.compare_exchange(0, cause, Ordering::Relaxed, Ordering::Relaxed);
            }
        };
        sched.run(vec![Box::new(arm(1)), Box::new(arm(2))]);
        assert!(latch.load(Ordering::Relaxed));
        let got = reason.load(Ordering::Relaxed);
        assert!(got == 1 || got == 2, "CAS admitted {got}");
    });
    assert!(report.complete, "schedule tree must be exhausted");
    assert!(report.schedules >= 2, "{}", report.schedules);
}

#[test]
fn protocols_survive_a_thousand_distinct_schedules() {
    // The acceptance bar for this harness: at least 1000 *distinct*
    // schedules across the two protocols, all invariant-clean. Three
    // participants per protocol blow the schedule count well past the
    // two-thread tests above; the budget caps runtime, not coverage.
    // Keys 42, 58, 74 all share base slot 10 under mask 15, so the
    // writers contend for the same probe window on every insert.
    let memo_report = Explorer::new(2_000).explore(|sched| {
        let memo = MemoCache::new(4);
        let m = &memo;
        sched.run(vec![
            Box::new(move || {
                m.insert(42, 1.0);
                m.insert(58, 58.0);
            }),
            Box::new(move || {
                m.insert(42, 2.0);
                m.insert(74, 74.0);
            }),
            Box::new(move || {
                let got = m.probe(42);
                assert!(
                    got.is_none() || got == Some(1.0) || got == Some(2.0),
                    "torn read: {got:?}"
                );
                let got = m.probe(58);
                assert!(got.is_none() || got == Some(58.0), "torn read: {got:?}");
            }),
        ]);
        let got = memo.probe(42);
        assert!(got == Some(1.0) || got == Some(2.0), "lost: {got:?}");
        assert_eq!(memo.probe(58), Some(58.0));
        assert_eq!(memo.probe(74), Some(74.0));
    });
    let best_report = Explorer::new(2_000).explore(|sched| {
        let shared = bare_shared();
        let s = &shared;
        sched.run(vec![
            Box::new(move || {
                let _ = try_improve(s, 5.0);
                // The global minimum: must always report improvable.
                assert!(try_improve(s, 1.0));
            }),
            Box::new(move || {
                let _ = try_improve(s, 6.0);
                let _ = try_improve(s, 3.0);
            }),
            Box::new(move || {
                let _ = try_improve(s, 4.0);
                let _ = try_improve(s, 2.0);
            }),
        ]);
        let best = f64::from_bits(shared.best_bits.load(crate::sync::Ordering::Relaxed));
        assert_eq!(best, 1.0, "best cost lost an update");
    });
    let total = memo_report.schedules + best_report.schedules;
    assert!(total >= 1_000, "only {total} schedules explored");
}
