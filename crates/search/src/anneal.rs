//! Simulated-annealing search over a mapspace.
//!
//! The paper's results use plain random sampling so that mapspace quality
//! — not search cleverness — drives the comparisons, but it notes the
//! mapspaces are "orthogonal to these search strategies and can leverage
//! them for improved performance" (GAMMA, Mind Mappings, CoSA). This
//! module provides one such strategy: local search with an annealing
//! acceptance rule, whose neighborhood moves are
//!
//! * **re-tile** — replace one dimension's tile chain with that
//!   dimension's chain from a fresh sample of the same mapspace (so every
//!   visited mapping stays inside the mapspace's factorization rules);
//! * **re-order** — swap two dimensions in one level's temporal
//!   permutation.
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_search::anneal::{anneal, AnnealConfig};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(16, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let outcome = anneal(&space, &AnnealConfig::default());
//! assert_eq!(outcome.best.unwrap().report.cycles(), 8);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ruby_mapping::Mapping;
use ruby_mapspace::Mapspace;
use ruby_model::{evaluate_with, EvalContext, ModelOptions};
use ruby_workload::{Dim, DimMap};

use crate::{BestMapping, MemoCache, Objective, SearchOutcome};

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total neighbor evaluations.
    pub steps: u64,
    /// Initial temperature as a fraction of the starting cost.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step (just below 1).
    pub cooling: f64,
    /// Samples drawn to find a valid starting point before giving up.
    pub max_restart_attempts: u64,
    /// What to minimize.
    pub objective: Objective,
    /// Cost-model options.
    pub model: ModelOptions,
    /// Memoize evaluated canonical keys: revisited mappings (the local
    /// moves cycle a lot) reuse their recorded cost instead of paying a
    /// model evaluation, counted in [`SearchOutcome::duplicates`].
    pub dedup: bool,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed: 0,
            steps: 2_000,
            initial_temperature: 0.2,
            cooling: 0.997,
            max_restart_attempts: 2_000,
            objective: Objective::Edp,
            model: ModelOptions::default(),
            dedup: true,
        }
    }
}

/// Runs simulated annealing over `mapspace`.
///
/// # Panics
///
/// Panics if `steps` is zero or `cooling` is not in `(0, 1]`.
pub fn anneal(mapspace: &Mapspace, config: &AnnealConfig) -> SearchOutcome {
    assert!(config.steps > 0, "need at least one annealing step");
    assert!(
        config.cooling > 0.0 && config.cooling <= 1.0,
        "cooling factor must be in (0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let memo = config.dedup.then(|| MemoCache::new(16));
    let mut evaluations = 0u64;
    let mut valid = 0u64;
    let mut invalid = 0u64;
    let mut duplicates = 0u64;
    let mut trace = Vec::new();

    // Classifies a candidate through the memo cache: `Some(cost)` for a
    // usable cost (memoized or freshly evaluated), `None` for invalid.
    let classify = |m: &Mapping, valid: &mut u64, invalid: &mut u64, dup: &mut u64| {
        let key = m.canonical_key();
        if let Some(memo) = &memo {
            if let Some(cost) = memo.probe(key) {
                *dup += 1;
                return (cost != f64::INFINITY).then_some(cost);
            }
        }
        match evaluate_with(&ctx, m) {
            Ok(report) => {
                *valid += 1;
                let cost = config.objective.cost(&report);
                if let Some(memo) = &memo {
                    memo.insert(key, cost);
                }
                Some(cost)
            }
            Err(_) => {
                *invalid += 1;
                if let Some(memo) = &memo {
                    memo.insert(key, f64::INFINITY);
                }
                None
            }
        }
    };

    // Find a valid starting point by rejection sampling.
    let mut current: Option<(Mapping, f64)> = None;
    for _ in 0..config.max_restart_attempts {
        evaluations += 1;
        let candidate = mapspace.sample(&mut rng);
        if let Some(cost) = classify(&candidate, &mut valid, &mut invalid, &mut duplicates) {
            trace.push((evaluations, cost));
            current = Some((candidate, cost));
            break;
        }
    }
    let Some((mut current_mapping, mut current_cost)) = current else {
        return SearchOutcome {
            best: None,
            evaluations,
            valid,
            invalid,
            duplicates,
            pruned_subtrees: 0,
            pruned_mappings: 0,
            exhausted: false,
            trace,
        };
    };
    let mut best_mapping = current_mapping.clone();
    let mut best_cost = current_cost;
    let mut temperature = current_cost * config.initial_temperature;

    for _ in 0..config.steps {
        evaluations += 1;
        let candidate = neighbor(mapspace, &current_mapping, &mut rng);
        temperature *= config.cooling;
        let Some(cost) = classify(&candidate, &mut valid, &mut invalid, &mut duplicates) else {
            continue;
        };
        let accept = cost <= current_cost
            || rng.gen::<f64>() < ((current_cost - cost) / temperature.max(1e-30)).exp();
        if accept {
            current_mapping = candidate;
            current_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best_mapping = current_mapping.clone();
                trace.push((evaluations, cost));
            }
        }
    }

    // lint: allow(panics) — re-evaluating a mapping is deterministic,
    // and this one already passed evaluation when it became the best.
    let report = evaluate_with(&ctx, &best_mapping)
        .expect("the best mapping was valid when first evaluated");
    SearchOutcome {
        best: Some(BestMapping {
            mapping: best_mapping,
            report,
            cost: best_cost,
        }),
        evaluations,
        valid,
        invalid,
        duplicates,
        pruned_subtrees: 0,
        pruned_mappings: 0,
        exhausted: false,
        trace,
    }
}

/// Produces a neighbor of `mapping` inside `mapspace`.
fn neighbor(mapspace: &Mapspace, mapping: &Mapping, rng: &mut SmallRng) -> Mapping {
    let num_levels = mapping.layout().num_levels();
    if rng.gen_bool(0.5) {
        // Re-tile one dimension from a fresh sample.
        let donor = mapspace.sample(rng);
        let dim = Dim::ALL[rng.gen_range(0..7)];
        let tiling = DimMap::from_fn(|d| {
            if d == dim {
                donor.tile_chain(d).to_vec()
            } else {
                mapping.tile_chain(d).to_vec()
            }
        });
        let perms = (0..num_levels).map(|l| *mapping.permutation(l)).collect();
        // lint: allow(panics) — the spliced chain came from a valid
        // sampled mapping over the same bounds, so the build succeeds.
        Mapping::from_tile_chains(num_levels, tiling, perms)
            .expect("splicing one valid chain keeps the mapping well-formed")
    } else {
        // Swap two dims in one level's permutation.
        let level = rng.gen_range(0..num_levels);
        let a = rng.gen_range(0..7);
        let b = rng.gen_range(0..7);
        let tiling = DimMap::from_fn(|d| mapping.tile_chain(d).to_vec());
        let perms: Vec<[Dim; 7]> = (0..num_levels)
            .map(|l| {
                let mut p = *mapping.permutation(l);
                if l == level {
                    p.swap(a, b);
                }
                p
            })
            .collect();
        // lint: allow(panics) — tile chains are untouched here; only
        // permutations changed, which cannot invalidate a mapping.
        Mapping::from_tile_chains(num_levels, tiling, perms)
            .expect("permutation swaps keep the mapping well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapspace::MapspaceKind;
    use ruby_workload::ProblemShape;

    fn toy(kind: MapspaceKind) -> Mapspace {
        Mapspace::new(
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
            kind,
        )
    }

    #[test]
    fn finds_optimum_on_toy() {
        let outcome = anneal(&toy(MapspaceKind::RubyS), &AnnealConfig::default());
        assert_eq!(outcome.best.unwrap().report.cycles(), 8);
        assert!(outcome.valid > 0);
    }

    #[test]
    fn trace_improves_monotonically() {
        let outcome = anneal(&toy(MapspaceKind::Ruby), &AnnealConfig::default());
        let costs: Vec<f64> = outcome.trace.iter().map(|&(_, c)| c).collect();
        assert!(costs.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn neighbors_stay_in_bounds() {
        let space = toy(MapspaceKind::Ruby);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut m = space.sample(&mut rng);
        for _ in 0..100 {
            m = neighbor(&space, &m, &mut rng);
            let chain = m.tile_chain(ruby_workload::Dim::M);
            assert_eq!(*chain.last().unwrap(), 113);
            assert_eq!(chain[0], 1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = AnnealConfig {
            steps: 300,
            ..AnnealConfig::default()
        };
        let a = anneal(&toy(MapspaceKind::RubyS), &cfg);
        let b = anneal(&toy(MapspaceKind::RubyS), &cfg);
        assert_eq!(a.best.unwrap().cost, b.best.unwrap().cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_rejected() {
        let cfg = AnnealConfig {
            cooling: 1.5,
            ..AnnealConfig::default()
        };
        let _ = anneal(&toy(MapspaceKind::Pfm), &cfg);
    }
}
