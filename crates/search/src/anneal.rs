//! Simulated-annealing search over a mapspace.
//!
//! The paper's results use plain random sampling so that mapspace quality
//! — not search cleverness — drives the comparisons, but it notes the
//! mapspaces are "orthogonal to these search strategies and can leverage
//! them for improved performance" (GAMMA, Mind Mappings, CoSA). This
//! module provides one such strategy: local search with an annealing
//! acceptance rule, whose neighborhood moves are
//!
//! * **re-tile** — replace one dimension's tile chain with that
//!   dimension's chain from a fresh sample of the same mapspace (so every
//!   visited mapping stays inside the mapspace's factorization rules);
//! * **re-order** — swap two dimensions in one level's temporal
//!   permutation.
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_search::anneal::{anneal, AnnealConfig};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(16, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let outcome = anneal(&space, &AnnealConfig::default());
//! assert_eq!(outcome.best.unwrap().report.cycles(), 8);
//! ```

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ruby_mapping::Mapping;
use ruby_mapspace::Mapspace;
use ruby_model::{CostReport, EvalContext, ModelOptions};
use ruby_workload::{Dim, DimMap};

use crate::checkpoint::{AnnealCursor, CheckpointCounters, Checkpointer, Cursor, SearchCheckpoint};
use crate::stop::StopToken;
use crate::{
    score_candidate, BestMapping, MemoCache, Objective, Scored, SearchOutcome, SearchStrategy,
};

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total neighbor evaluations.
    pub steps: u64,
    /// Initial temperature as a fraction of the starting cost.
    pub initial_temperature: f64,
    /// Geometric cooling factor per step (just below 1).
    pub cooling: f64,
    /// Samples drawn to find a valid starting point before giving up.
    pub max_restart_attempts: u64,
    /// What to minimize.
    pub objective: Objective,
    /// Cost-model options.
    pub model: ModelOptions,
    /// Memoize evaluated canonical keys: revisited mappings (the local
    /// moves cycle a lot) reuse their recorded cost instead of paying a
    /// model evaluation, counted in [`SearchOutcome::duplicates`].
    pub dedup: bool,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed: 0,
            steps: 2_000,
            initial_temperature: 0.2,
            cooling: 0.997,
            max_restart_attempts: 2_000,
            objective: Objective::Edp,
            model: ModelOptions::default(),
            dedup: true,
        }
    }
}

/// Resilience wiring handed down by the engine; every field defaults to
/// "absent", so direct [`anneal`] callers get the historical behavior.
#[derive(Default)]
pub(crate) struct Hooks<'a> {
    /// Cooperative cancellation token; polled once per step.
    pub(crate) token: Option<&'a StopToken>,
    /// Wall-clock budget (`SearchConfig::max_seconds`), already resolved
    /// to an absolute deadline.
    pub(crate) deadline: Option<Instant>,
    /// Periodic checkpoint writer; also receives the drain checkpoint.
    pub(crate) checkpointer: Option<&'a Checkpointer>,
    /// A checkpoint to continue from (only its `Anneal` cursor is used;
    /// the engine routes other cursors elsewhere).
    pub(crate) resume: Option<&'a SearchCheckpoint>,
}

/// A candidate's classification through the memo cache.
enum Classified {
    /// Memoized finite cost: usable, but carries no fresh report.
    Hit(f64),
    /// Freshly evaluated valid mapping.
    Fresh(f64, CostReport),
    /// Invalid (fresh, memoized, or quarantined after a panic).
    Invalid,
}

/// The annealer's single-threaded ledger: everything a checkpoint needs
/// beyond the cursor itself.
#[derive(Default)]
struct Tally {
    evaluations: u64,
    valid: u64,
    invalid: u64,
    duplicates: u64,
    worker_restarts: u64,
    quarantined: u64,
    trace: Vec<(u64, f64)>,
    poison: Vec<u64>,
}

impl Tally {
    /// Classifies `m` through the memo, containing evaluation panics:
    /// a panicking candidate is quarantined (counted invalid, memoized
    /// as such, recorded in the poison list) and the walk continues.
    fn classify(
        &mut self,
        ctx: &EvalContext,
        config: &AnnealConfig,
        memo: &Option<MemoCache>,
        m: &Mapping,
    ) -> Classified {
        let key = m.canonical_key();
        if let Some(memo) = memo {
            if let Some(cost) = memo.probe(key) {
                self.duplicates += 1;
                return if cost == f64::INFINITY {
                    Classified::Invalid
                } else {
                    Classified::Hit(cost)
                };
            }
        }
        match score_candidate(ctx, m) {
            Scored::Valid(report) => {
                self.valid += 1;
                let cost = config.objective.cost(&report);
                if let Some(memo) = memo {
                    memo.insert(key, cost);
                }
                Classified::Fresh(cost, report)
            }
            Scored::Invalid => {
                self.invalid += 1;
                if let Some(memo) = memo {
                    memo.insert(key, f64::INFINITY);
                }
                Classified::Invalid
            }
            Scored::Panicked => {
                self.invalid += 1;
                self.quarantined += 1;
                self.worker_restarts += 1;
                self.poison.push(key);
                if let Some(memo) = memo {
                    memo.insert(key, f64::INFINITY);
                }
                Classified::Invalid
            }
        }
    }

    /// Packages the ledger into a checkpoint around `cursor` (the
    /// fingerprint is stamped by [`Checkpointer::save`]).
    fn snapshot(
        &self,
        best: &Option<BestMapping>,
        memo: &Option<MemoCache>,
        cursor: Cursor,
    ) -> SearchCheckpoint {
        SearchCheckpoint {
            fingerprint: 0,
            strategy: SearchStrategy::Anneal.name().to_owned(),
            counters: CheckpointCounters {
                evaluations: self.evaluations,
                valid: self.valid,
                invalid: self.invalid,
                duplicates: self.duplicates,
                pruned_subtrees: 0,
                pruned_mappings: 0,
                improvements: self.trace.len() as u64,
                fails: 0,
                worker_restarts: self.worker_restarts,
                quarantined: self.quarantined,
            },
            best: best.clone(),
            best_ordinal: 0,
            trace: self.trace.clone(),
            memo: memo.as_ref().map(MemoCache::dump).unwrap_or_default(),
            poison: self.poison.clone(),
            cursor,
        }
    }

    /// The final outcome; `stop_reason` is `Some` exactly when the walk
    /// drained early.
    fn outcome(self, best: Option<BestMapping>, stop_reason: Option<&str>) -> SearchOutcome {
        SearchOutcome {
            best,
            evaluations: self.evaluations,
            valid: self.valid,
            invalid: self.invalid,
            duplicates: self.duplicates,
            pruned_subtrees: 0,
            pruned_mappings: 0,
            exhausted: false,
            trace: self.trace,
            stopped_early: stop_reason.is_some(),
            stop_reason: stop_reason.map(str::to_owned),
            worker_restarts: self.worker_restarts,
            quarantined: self.quarantined,
        }
    }
}

/// The annealing acceptance rule. The RNG draw happens only when the
/// candidate is strictly worse (short-circuit), which resume replay
/// relies on for bit-identical streams.
fn accepts(rng: &mut SmallRng, cost: f64, current_cost: f64, temperature: f64) -> bool {
    cost <= current_cost
        || rng.gen::<f64>() < ((current_cost - cost) / temperature.max(1e-30)).exp()
}

/// Runs simulated annealing over `mapspace`.
///
/// # Panics
///
/// Panics if `steps` is zero or `cooling` is not in `(0, 1]`.
pub fn anneal(mapspace: &Mapspace, config: &AnnealConfig) -> SearchOutcome {
    anneal_with(mapspace, config, Hooks::default())
}

/// [`anneal`] with the engine's resilience wiring: cancellation, a
/// wall-clock deadline, periodic checkpoints at step boundaries, and
/// resume from an [`AnnealCursor`]. Every step boundary is a barrier
/// (the walk is single-threaded), so a resumed run replays the exact
/// RNG, temperature, and acceptance stream of an uninterrupted one.
pub(crate) fn anneal_with(
    mapspace: &Mapspace,
    config: &AnnealConfig,
    hooks: Hooks<'_>,
) -> SearchOutcome {
    // justified: pre-engine API contract — these have always been
    // documented panics on nonsensical annealing parameters.
    assert!(config.steps > 0, "need at least one annealing step");
    // justified: same documented contract as the steps assert.
    assert!(
        config.cooling > 0.0 && config.cooling <= 1.0,
        "cooling factor must be in (0, 1]"
    );
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let memo = config.dedup.then(|| MemoCache::try_new(16)).flatten();
    let mut tally = Tally::default();

    let resume = hooks.resume.and_then(|cp| match &cp.cursor {
        Cursor::Anneal(cursor) => Some((cp, cursor)),
        _ => None,
    });

    let mut rng;
    let mut current_mapping;
    let mut current_cost;
    let mut best: Option<BestMapping>;
    let mut best_cost;
    let mut temperature;
    let start_step;
    if let Some((cp, cursor)) = resume {
        rng = SmallRng::from_state(cursor.rng);
        current_mapping = cursor.current.clone();
        current_cost = cursor.current_cost;
        best = cp.best.clone();
        best_cost = cp.best.as_ref().map_or(f64::INFINITY, |b| b.cost);
        temperature = cursor.temperature;
        start_step = cursor.step;
        tally.evaluations = cp.counters.evaluations;
        tally.valid = cp.counters.valid;
        tally.invalid = cp.counters.invalid;
        tally.duplicates = cp.counters.duplicates;
        tally.worker_restarts = cp.counters.worker_restarts;
        tally.quarantined = cp.counters.quarantined;
        tally.trace = cp.trace.clone();
        tally.poison = cp.poison.clone();
        if let Some(memo) = &memo {
            memo.restore(&cp.memo);
        }
    } else {
        rng = SmallRng::seed_from_u64(config.seed);
        // Find a valid starting point by rejection sampling.
        let mut start: Option<(Mapping, f64, CostReport)> = None;
        for _ in 0..config.max_restart_attempts {
            tally.evaluations += 1;
            let candidate = mapspace.sample(&mut rng);
            if let Classified::Fresh(cost, report) = tally.classify(&ctx, config, &memo, &candidate)
            {
                tally.trace.push((tally.evaluations, cost));
                start = Some((candidate, cost, report));
                break;
            }
        }
        let Some((mapping, cost, report)) = start else {
            return tally.outcome(None, None);
        };
        current_cost = cost;
        temperature = cost * config.initial_temperature;
        best = Some(BestMapping {
            mapping: mapping.clone(),
            report,
            cost,
        });
        best_cost = cost;
        current_mapping = mapping;
        start_step = 0;
    }

    let mut stop_reason: Option<&str> = None;
    for step in start_step..config.steps {
        // Step boundaries are the annealer's barriers: drain checks and
        // checkpoints happen here, before the step consumes any RNG.
        let drained = if hooks
            .token
            .is_some_and(|t| t.should_stop_at(tally.evaluations))
        {
            stop_reason = Some("stop-requested");
            true
        } else if hooks.deadline.is_some_and(|d| Instant::now() >= d) {
            stop_reason = Some("deadline");
            true
        } else {
            false
        };
        let cursor = || {
            Cursor::Anneal(AnnealCursor {
                rng: rng.to_state(),
                step,
                temperature,
                current_cost,
                current: current_mapping.clone(),
            })
        };
        if drained {
            if let Some(cpr) = hooks.checkpointer {
                cpr.save(tally.snapshot(&best, &memo, cursor()));
            }
            break;
        }
        if let Some(cpr) = hooks.checkpointer {
            if step > start_step && step.is_multiple_of(cpr.stride()) {
                cpr.save(tally.snapshot(&best, &memo, cursor()));
            }
        }

        tally.evaluations += 1;
        let candidate = neighbor(mapspace, &current_mapping, &mut rng);
        temperature *= config.cooling;
        match tally.classify(&ctx, config, &memo, &candidate) {
            Classified::Invalid => {}
            Classified::Hit(cost) => {
                if accepts(&mut rng, cost, current_cost, temperature) {
                    // A memoized cost was evaluated (and best-tracked)
                    // once already, so it can never beat `best` here.
                    current_mapping = candidate;
                    current_cost = cost;
                }
            }
            Classified::Fresh(cost, report) => {
                if accepts(&mut rng, cost, current_cost, temperature) {
                    if cost < best_cost {
                        best_cost = cost;
                        best = Some(BestMapping {
                            mapping: candidate.clone(),
                            report,
                            cost,
                        });
                        tally.trace.push((tally.evaluations, cost));
                    }
                    current_mapping = candidate;
                    current_cost = cost;
                }
            }
        }
    }

    tally.outcome(best, stop_reason)
}

/// Produces a neighbor of `mapping` inside `mapspace`.
fn neighbor(mapspace: &Mapspace, mapping: &Mapping, rng: &mut SmallRng) -> Mapping {
    let num_levels = mapping.layout().num_levels();
    if rng.gen_bool(0.5) {
        // Re-tile one dimension from a fresh sample.
        let donor = mapspace.sample(rng);
        let dim = Dim::ALL[rng.gen_range(0..7)];
        let tiling = DimMap::from_fn(|d| {
            if d == dim {
                donor.tile_chain(d).to_vec()
            } else {
                mapping.tile_chain(d).to_vec()
            }
        });
        let perms = (0..num_levels).map(|l| *mapping.permutation(l)).collect();
        // justified: the spliced chain came from a valid
        // sampled mapping over the same bounds, so the build succeeds.
        Mapping::from_tile_chains(num_levels, tiling, perms)
            .expect("splicing one valid chain keeps the mapping well-formed")
    } else {
        // Swap two dims in one level's permutation.
        let level = rng.gen_range(0..num_levels);
        let a = rng.gen_range(0..7);
        let b = rng.gen_range(0..7);
        let tiling = DimMap::from_fn(|d| mapping.tile_chain(d).to_vec());
        let perms: Vec<[Dim; 7]> = (0..num_levels)
            .map(|l| {
                let mut p = *mapping.permutation(l);
                if l == level {
                    p.swap(a, b);
                }
                p
            })
            .collect();
        // justified: tile chains are untouched here; only
        // permutations changed, which cannot invalidate a mapping.
        Mapping::from_tile_chains(num_levels, tiling, perms)
            .expect("permutation swaps keep the mapping well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapspace::MapspaceKind;
    use ruby_workload::ProblemShape;

    fn toy(kind: MapspaceKind) -> Mapspace {
        Mapspace::new(
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
            kind,
        )
    }

    #[test]
    fn finds_optimum_on_toy() {
        let outcome = anneal(&toy(MapspaceKind::RubyS), &AnnealConfig::default());
        assert_eq!(outcome.best.unwrap().report.cycles(), 8);
        assert!(outcome.valid > 0);
    }

    #[test]
    fn trace_improves_monotonically() {
        let outcome = anneal(&toy(MapspaceKind::Ruby), &AnnealConfig::default());
        let costs: Vec<f64> = outcome.trace.iter().map(|&(_, c)| c).collect();
        assert!(costs.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn neighbors_stay_in_bounds() {
        let space = toy(MapspaceKind::Ruby);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut m = space.sample(&mut rng);
        for _ in 0..100 {
            m = neighbor(&space, &m, &mut rng);
            let chain = m.tile_chain(ruby_workload::Dim::M);
            assert_eq!(*chain.last().unwrap(), 113);
            assert_eq!(chain[0], 1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = AnnealConfig {
            steps: 300,
            ..AnnealConfig::default()
        };
        let a = anneal(&toy(MapspaceKind::RubyS), &cfg);
        let b = anneal(&toy(MapspaceKind::RubyS), &cfg);
        assert_eq!(a.best.unwrap().cost, b.best.unwrap().cost);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_rejected() {
        let cfg = AnnealConfig {
            cooling: 1.5,
            ..AnnealConfig::default()
        };
        let _ = anneal(&toy(MapspaceKind::Pfm), &cfg);
    }
}
