//! Pruned deterministic enumeration backend.
//!
//! Builds [`ruby_mapspace::EnumTables`] (deduplicated per-dimension tile
//! chains, grouped into fanout-feasible *regions*) and sweeps the leaves
//! in a fixed, probe-guided order:
//!
//! 1. **Probe** — evaluate leaf 0 (the fastest member) of the cheapest
//!    `PROBE_REGIONS` regions by objective floor. A region's probe cost
//!    turns out to rank regions far better than its floor alone.
//! 2. **Scan** — walk regions in probe order, screening every leaf with
//!    [`EvalContext::precheck`]: the exact fanout/capacity tests the
//!    model would run, at a fraction of the price. Rejected leaves are
//!    `pruned_mappings`; survivors are queued *highest buffer pressure
//!    first* (mappings near the capacity boundary reuse the most data
//!    and hold the best candidates). Whole regions whose floor already
//!    exceeds the best are dropped as `pruned_subtrees`.
//! 3. **Rounds** — breadth-first across the scanned batch: each round
//!    hands every region's next `CHUNK` candidates to the worker pool.
//!    Chunks run one at a time (threads split a chunk internally), so
//!    the sequence of chunk barriers is deterministic.
//!
//! Determinism: the candidate sequence is fixed by the tables and the
//! probe costs (both deterministic); pruning compares an *admissible*
//! lower bound against a best-cost snapshot taken at the previous chunk
//! barrier, so a candidate that could be (or tie) the optimum is never
//! discarded, and the snapshot — unlike a live racy read — makes every
//! prune decision, and hence every counter, identical across runs and
//! thread counts. Termination is a patience rule on the same fixed
//! sequence: stop once `termination` candidates have been considered
//! past the first achiever of the current best (see
//! `Record::best_ordinal`).
//!
//! Budget: `max_evaluations` bounds candidates *considered* (scored plus
//! bound-pruned); leaves the capacity screen rejects never consume
//! budget — they are exactly the rejections the random sampler pays a
//! (cheap) model call to discover, surfaced here from the tables alone.
//!
//! Enumeration covers tile chains only (iterators leave permutations at
//! their defaults); a single-threaded pairwise-swap *permutation polish*
//! afterwards spends a small budget reserve refining the winner's loop
//! orders. `exhausted` means every deduplicated chain combination was
//! considered: evaluated, memoized, capacity-screened, or soundly
//! pruned.

use std::sync::PoisonError;

use crate::sync::Ordering;

use ruby_mapping::Mapping;
use ruby_mapspace::{EnumTables, Mapspace, Region, SubspaceIterator};
use ruby_model::EvalContext;

use crate::checkpoint::{
    Checkpointer, Cursor, ExhaustiveCursor, RandomCursor, RandomPhase, SearchCheckpoint,
};
use crate::{
    note_tie_ordinal, quarantine, record_improvement, run_random, score_candidate, try_improve,
    Scored, SearchConfig, Shared,
};

/// Candidates per work chunk: the unit of parallel dispatch and of the
/// deterministic barrier at which pruning snapshots and the patience
/// rule are refreshed.
const CHUNK: usize = 256;

/// Regions probed up front. Probes are single evaluations, so this caps
/// the ordering overhead at a few hundred model calls.
const PROBE_REGIONS: usize = 512;

/// Hard cap on leaves decoded by the capacity scan, bounding time and
/// candidate memory when the budget is huge. Hitting it clears
/// `exhausted`.
const MAX_REGION_SCAN: u64 = 1 << 20;

/// One scanned region's surviving candidates, consumed chunk by chunk.
struct RegionWork {
    ri: usize,
    /// `(buffer pressure, leaf index, sequential steps)`, highest
    /// pressure first.
    cands: Vec<(u64, u64, u64)>,
    next: usize,
}

/// Where a checkpointed enumeration run left off: either inside the
/// deterministic sweep itself, or inside the random-sampling fallback
/// taken when the space could not be tabulated.
pub(crate) enum Resume {
    Sweep(ExhaustiveCursor),
    Fallback(RandomCursor),
}

/// Runs the random fallback with the enumeration leg's budget
/// adjustments (an otherwise unbounded exhaustive run gets a finite
/// patience so the fallback terminates).
fn run_fallback(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    cpr: Option<&Checkpointer>,
    rngs: Option<Vec<[u64; 4]>>,
) {
    if budget.is_none() && config.termination.is_none() {
        // Exhaustive mode skips the unbounded-search assert, so give
        // the fallback a finite victory condition.
        let fallback = SearchConfig {
            termination: Some(1_000),
            ..config.clone()
        };
        run_random(
            mapspace,
            &fallback,
            shared,
            budget,
            RandomPhase::Fallback,
            cpr,
            rngs,
        );
    } else {
        run_random(
            mapspace,
            config,
            shared,
            budget,
            RandomPhase::Fallback,
            cpr,
            rngs,
        );
    }
}

/// Runs pruned enumeration under `budget` considered candidates; returns
/// whether the whole deduplicated chain space was covered. Falls back to
/// random sampling (returning `false`) when the space is too large to
/// tabulate. A `resume` cursor re-enters the matching leg: the sweep
/// restarts from its last batch barrier (the batch in flight is redone,
/// bit-identically, against the restored counters/memo/best), the
/// fallback from its saved sampler states.
pub(crate) fn run(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    cpr: Option<&Checkpointer>,
    resume: Option<Resume>,
) -> bool {
    let sweep_resume = match resume {
        Some(Resume::Fallback(cursor)) => {
            // The interrupted run already proved the space untabulable;
            // skip the (expensive) table build and rejoin the fallback.
            run_fallback(
                mapspace,
                config,
                shared,
                cursor.budget,
                cpr,
                Some(cursor.rngs),
            );
            return false;
        }
        Some(Resume::Sweep(cursor)) => Some(cursor),
        None => None,
    };
    let tables = match mapspace.enum_tables() {
        Some(tables) => tables,
        None => {
            run_fallback(mapspace, config, shared, budget, cpr, None);
            return false;
        }
    };

    if sweep_resume.is_none() {
        // A hybrid warm-up records random-phase evaluation counts as the
        // achiever position; restart the patience clock at the
        // enumeration's own ordinal zero. (On resume the checkpoint
        // already holds the enumeration-relative ordinal.)
        shared
            .record
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .best_ordinal = 0;
    }

    // The coordinator drives chunk-scoped worker pools, so liveness is
    // tracked at phase granularity: the configured width while the
    // enumeration runs, zero once it returns.
    shared.progress_set_live(config.threads as u64);

    let num_levels = mapspace.arch().num_levels();
    // 21 pairwise swaps per level, two sweeps, plus the re-check round.
    let polish_cap = num_levels as u64 * 21 * 2 + 1;
    let (select_budget, polish_budget) = match budget {
        Some(b) => {
            let reserve = (b / 8).min(polish_cap);
            (b - reserve, reserve)
        }
        None => (u64::MAX, polish_cap),
    };

    // Each region's private objective floor: all of a region's mappings
    // share one spatial signature, so the energy floor specializes to
    // their exact utilized fanout, and no member runs in fewer than
    // `min_steps` sequential steps.
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let regions = tables.regions();
    let energy_floor: Vec<f64> = regions
        .iter()
        .map(|r| ctx.energy_floor_for_spatial(&tables.region_spatial_utilization(r)))
        .collect();
    let floor_cost: Vec<f64> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| config.objective.cost_floor(energy_floor[i], r.min_steps))
        .collect();
    let mut order: Vec<usize> = (0..regions.len()).collect();
    order.sort_by(|&a, &b| floor_cost[a].total_cmp(&floor_cost[b]).then(a.cmp(&b)));

    // justified: every architecture has >= 1 level, so the
    // all-ones default factorization always builds.
    let mut mapping = Mapping::builder(num_levels)
        .build_for_bounds(mapspace.shape().bounds())
        .expect("the default mapping is well-formed");

    let mut probe_done = vec![false; regions.len()];
    let mut ordinal = 0u64; // candidates considered so far
    let mut stopped = false;
    let mut complete = true;
    let mut oi = 0usize; // scan cursor into `order`
    let mut scanned = 0u64;
    let mut start_pi = 0usize; // probe cursor into `order`
    let mut probe_cost = vec![f64::INFINITY; regions.len()];
    let mut skip_probe = false;
    if let Some(cursor) = &sweep_resume {
        // Restore the sweep coordinates verbatim. A mid-probe checkpoint
        // rejoins the probe loop (the floor-sorted `order` it stored is
        // the pre-sort one); a batch-barrier checkpoint skips straight
        // to the scan, its `order` already probe-sorted.
        order = cursor.order.iter().map(|&ri| ri as usize).collect();
        probe_done = cursor.probe_done.clone();
        ordinal = cursor.ordinal;
        if cursor.probing {
            start_pi = cursor.pi as usize;
            probe_cost = cursor
                .probe_cost
                .iter()
                .map(|&b| f64::from_bits(b))
                .collect();
            if probe_cost.len() != regions.len() {
                probe_cost = vec![f64::INFINITY; regions.len()];
            }
        } else {
            skip_probe = true;
            oi = cursor.oi as usize;
            scanned = cursor.scanned;
        }
    }
    if !skip_probe {
        // Phase 1: probe leaf 0 of the cheapest-floor regions,
        // sequentially (so probe ordinals and the improvement trace are
        // deterministic). Every iteration top is a barrier — the phase
        // is single-threaded — so an interrupt checkpoints right here.
        let probe_count = PROBE_REGIONS.min(order.len());
        for pi in start_pi..probe_count {
            let ri = order[pi];
            if ordinal >= select_budget {
                stopped = true;
                complete = false;
                break;
            }
            if shared.check_interrupt() {
                if let Some(cpr) = cpr {
                    cpr.save(SearchCheckpoint::capture(
                        shared,
                        config,
                        Cursor::Exhaustive(ExhaustiveCursor {
                            budget,
                            order: order.iter().map(|&r| r as u64).collect(),
                            probe_done: probe_done.clone(),
                            oi: 0,
                            ordinal,
                            scanned: 0,
                            probing: true,
                            pi: pi as u64,
                            probe_cost: probe_cost.iter().map(|c| c.to_bits()).collect(),
                        }),
                    ));
                }
                stopped = true;
                complete = false;
                break;
            }
            probe_done[ri] = true;
            // justified: EnumTables only emits regions with
            // `leaves >= 1`, so leaf 0 always decodes.
            SubspaceIterator::new(tables, &regions[ri], 0, 1)
                .next_into(&mut mapping)
                .expect("every region has at least one leaf");
            match ctx.precheck(&mapping) {
                Err(_) if config.prune => {
                    // ordering: Relaxed — statistics counter, read only
                    // after the thread join barrier.
                    shared.pruned_mappings.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    ordinal += 1;
                    // ordering: Relaxed — statistics counters, read only
                    // after the thread join barrier.
                    shared.evals.fetch_add(1, Ordering::Relaxed);
                    shared.invalid.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    ordinal += 1;
                    if let Some(cost) = consider(&ctx, config, shared, &mapping, ordinal) {
                        probe_cost[ri] = cost;
                    }
                }
            }
        }

        // The probe phase is a natural snapshot point: the first costs
        // are in and the region ranking is about to be fixed.
        shared.publish_progress();

        // Phase 2 order: probed regions by measured quality, then the
        // unprobed tail by floor (`order` is already floor-sorted).
        order[..probe_count].sort_by(|&a, &b| {
            probe_cost[a]
                .total_cmp(&probe_cost[b])
                .then(floor_cost[a].total_cmp(&floor_cost[b]))
                .then(a.cmp(&b))
        });
    }

    let mut capped = false;
    'outer: while !stopped {
        // Batch barrier: the previous batch's workers joined, so the
        // counters, memo, and best are settled and deterministic. Save
        // the resumable state now — an interrupt anywhere inside the
        // batch below resumes from this point and redoes the batch
        // bit-identically.
        if let Some(cpr) = cpr {
            cpr.save(SearchCheckpoint::capture(
                shared,
                config,
                Cursor::Exhaustive(ExhaustiveCursor {
                    budget,
                    order: order.iter().map(|&ri| ri as u64).collect(),
                    probe_done: probe_done.clone(),
                    oi: oi as u64,
                    ordinal,
                    scanned,
                    probing: false,
                    pi: 0,
                    probe_cost: Vec::new(),
                }),
            ));
        }
        if shared.check_interrupt() {
            complete = false;
            break;
        }
        // Scan regions into a batch holding at least the remaining
        // budget's worth of screened candidates.
        let remaining = select_budget.saturating_sub(ordinal);
        if remaining == 0 {
            if oi < order.len() {
                complete = false;
            }
            break;
        }
        let mut batch: Vec<RegionWork> = Vec::new();
        let mut batch_cands = 0u64;
        while batch_cands < remaining && oi < order.len() {
            let ri = order[oi];
            oi += 1;
            let region = &regions[ri];
            let start = u64::from(probe_done[ri]); // leaf 0 already considered
            let to_decode = region.leaves - start;
            if to_decode == 0 {
                continue;
            }
            // Region subtree cut: the floor is admissible and the best
            // only improves, so nothing in here can win or tie.
            // ordering: Relaxed — value-only best-cost snapshot; the
            // counters below are statistics read after the join barrier.
            let best = f64::from_bits(shared.best_bits.load(Ordering::Relaxed));
            if config.prune && floor_cost[ri] > best {
                shared.pruned_subtrees.fetch_add(1, Ordering::Relaxed);
                // ordering: Relaxed — statistics counter, as above.
                shared
                    .pruned_mappings
                    .fetch_add(to_decode, Ordering::Relaxed);
                continue;
            }
            if scanned + to_decode > MAX_REGION_SCAN {
                capped = true;
                complete = false;
                break;
            }
            scanned += to_decode;
            let mut cands: Vec<(u64, u64, u64)> = Vec::new();
            let mut it = SubspaceIterator::new(tables, region, start, region.leaves);
            let mut leaf = start;
            while let Some(steps) = it.next_into(&mut mapping) {
                // Drain politely on long scans: one flag/clock poll per
                // 1024 decoded leaves.
                if leaf & 1023 == 0 && shared.check_interrupt() {
                    stopped = true;
                    complete = false;
                    break;
                }
                match ctx.precheck(&mapping) {
                    Ok(pressure) => cands.push((pressure, leaf, steps)),
                    Err(_) if config.prune => {
                        // ordering: Relaxed — statistics counter, read
                        // only after the thread join barrier.
                        shared.pruned_mappings.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // With pruning off, screened-out leaves are
                        // charged like the random sampler's invalid
                        // draws.
                        ordinal += 1;
                        // ordering: Relaxed — statistics counters, read
                        // only after the thread join barrier.
                        shared.evals.fetch_add(1, Ordering::Relaxed);
                        shared.invalid.fetch_add(1, Ordering::Relaxed);
                        if ordinal >= select_budget {
                            stopped = true;
                            complete = false;
                            break;
                        }
                    }
                }
                leaf += 1;
            }
            if stopped {
                break 'outer;
            }
            // Highest buffer pressure first: the best mappings sit near
            // the capacity boundary, and this surfaces them orders of
            // magnitude earlier than native leaf order.
            cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            batch_cands += cands.len() as u64;
            if !cands.is_empty() {
                batch.push(RegionWork { ri, cands, next: 0 });
            }
        }
        if batch.is_empty() {
            break;
        }

        // Breadth-first rounds: every region advances by one chunk per
        // round, so a strong region found later still gets depth before
        // the budget runs out.
        let mut pending = batch_cands;
        'rounds: while pending > 0 {
            for rw in batch.iter_mut() {
                if rw.next >= rw.cands.len() {
                    continue;
                }
                if ordinal >= select_budget {
                    stopped = true;
                    break 'rounds;
                }
                if shared.check_interrupt() {
                    stopped = true;
                    complete = false;
                    break 'rounds;
                }
                let take = CHUNK
                    .min(rw.cands.len() - rw.next)
                    .min(usize::try_from(select_budget - ordinal).unwrap_or(usize::MAX));
                let chunk = &rw.cands[rw.next..rw.next + take];
                // The snapshot is deterministic at this barrier; workers
                // prune against it rather than the live (racy) best.
                // ordering: Relaxed — value-only word; the previous
                // chunk's thread joins ordered all its CAS updates
                // before this read.
                let snapshot = f64::from_bits(shared.best_bits.load(Ordering::Relaxed));
                process_chunk(
                    tables,
                    &regions[rw.ri],
                    chunk,
                    ordinal,
                    energy_floor[rw.ri],
                    snapshot,
                    &ctx,
                    config,
                    shared,
                );
                rw.next += take;
                pending -= take as u64;
                ordinal += take as u64;
                // Chunk barriers are the enumeration's progress beat:
                // the workers just joined, so the counters are settled.
                shared.publish_progress();
                if let Some(limit) = config.termination {
                    let first = shared
                        .record
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .best_ordinal;
                    if ordinal.saturating_sub(first) >= limit {
                        stopped = true;
                        break 'rounds;
                    }
                }
            }
        }
        if stopped && (pending > 0 || oi < order.len()) {
            complete = false;
        }
    }
    if capped {
        complete = false;
    }

    if shared.is_stopped_early() {
        // Interrupted: the batch-barrier checkpoint above is the resume
        // point, and the polish (which the resumed run will redo in
        // full) is skipped so the drain stays prompt.
        shared.progress_set_live(0);
        return false;
    }

    polish_permutations(mapspace, config, shared, polish_budget, ordinal);
    shared.progress_set_live(0);
    complete
}

/// Scores one enumeration candidate: memo probe, model evaluation, best
/// and first-achiever bookkeeping. Returns the candidate's cost when it
/// is valid (probes use it to rank regions).
fn consider(
    ctx: &EvalContext,
    config: &SearchConfig,
    shared: &Shared,
    mapping: &Mapping,
    ordinal: u64,
) -> Option<f64> {
    let key = mapping.canonical_key();
    if let Some(memo) = &shared.memo {
        if let Some(cost) = memo.probe(key) {
            // ordering: Relaxed — statistics counters, read only after
            // the thread join barrier.
            shared.evals.fetch_add(1, Ordering::Relaxed);
            shared.duplicates.fetch_add(1, Ordering::Relaxed);
            if cost != f64::INFINITY {
                note_tie_ordinal(shared, cost, ordinal);
                return Some(cost);
            }
            return None;
        }
    }
    match score_candidate(ctx, mapping) {
        Scored::Valid(report) => {
            // ordering: Relaxed — statistics counters, read only after
            // the thread join barrier.
            shared.evals.fetch_add(1, Ordering::Relaxed);
            shared.valid.fetch_add(1, Ordering::Relaxed);
            let cost = config.objective.cost(&report);
            if let Some(memo) = &shared.memo {
                memo.insert(key, cost);
            }
            if try_improve(shared, cost) {
                record_improvement(shared, config, mapping, report, cost, ordinal);
            }
            Some(cost)
        }
        Scored::Invalid => {
            // ordering: Relaxed — statistics counters, read only after
            // the thread join barrier.
            shared.evals.fetch_add(1, Ordering::Relaxed);
            shared.invalid.fetch_add(1, Ordering::Relaxed);
            if let Some(memo) = &shared.memo {
                memo.insert(key, f64::INFINITY);
            }
            None
        }
        Scored::Panicked => {
            // A panicking evaluation is contained per candidate: charge
            // the reservation, quarantine the key (counted invalid so
            // the accounting identity holds), and keep sweeping.
            // ordering: Relaxed — statistics counters, read only after
            // the thread join barrier.
            shared.evals.fetch_add(1, Ordering::Relaxed);
            quarantine(shared, key);
            shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Scores one chunk of screened candidates, threads striding the slice.
/// Ordinals are pre-assigned from the slice position, and the floor
/// prune compares against the caller's barrier snapshot, so the chunk's
/// contribution to every counter is independent of scheduling.
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    tables: &EnumTables,
    region: &Region,
    chunk: &[(u64, u64, u64)],
    base_ordinal: u64,
    energy_floor: f64,
    best_snapshot: f64,
    ctx: &EvalContext,
    config: &SearchConfig,
    shared: &Shared,
) {
    let work = |offset: usize| {
        // justified: every architecture has >= 1 level, so
        // the all-ones default factorization always builds.
        let mut mapping = Mapping::builder(ctx.arch().num_levels())
            .build_for_bounds(ctx.shape().bounds())
            .expect("the default mapping is well-formed");
        let mut i = offset;
        while i < chunk.len() {
            let (_, leaf, steps) = chunk[i];
            if config.prune && config.objective.cost_floor(energy_floor, steps) > best_snapshot {
                // ordering: Relaxed — statistics counter, read only
                // after the thread join barrier.
                shared.pruned_mappings.fetch_add(1, Ordering::Relaxed);
            } else {
                // justified: `leaf` came from this region's
                // own scan, so it is in range by construction.
                SubspaceIterator::new(tables, region, leaf, leaf + 1)
                    .next_into(&mut mapping)
                    .expect("leaf index is in range");
                consider(ctx, config, shared, &mapping, base_ordinal + i as u64 + 1);
            }
            i += config.threads;
        }
    };
    if config.threads == 1 {
        work(0);
    } else {
        std::thread::scope(|scope| {
            let work = &work;
            for t in 0..config.threads.min(chunk.len()) {
                scope.spawn(move || work(t));
            }
        });
    }
}

/// Single-threaded coordinate descent over the best mapping's loop
/// orders: try every pairwise swap at every level, keep strict
/// improvements, repeat until a full sweep finds none or the budget
/// reserve runs out. Swaps that do not change the canonical form (both
/// loops trivial at that level) are skipped for free; everything else is
/// scored through the memo, so the accounting identity holds here too.
fn polish_permutations(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: u64,
    base_ordinal: u64,
) {
    if budget == 0 {
        return;
    }
    let Some(best) = shared
        .record
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .best
        .clone()
    else {
        return;
    };
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let mut current = best.mapping;
    let mut current_cost = best.cost;
    let mut current_key = current.canonical_key();
    let mut spent = 0u64;
    let mut improved = true;
    while improved && spent < budget {
        improved = false;
        'sweep: for level in 0..mapspace.arch().num_levels() {
            for i in 0..6 {
                for j in (i + 1)..7 {
                    if spent >= budget {
                        break 'sweep;
                    }
                    if shared.check_interrupt() {
                        break 'sweep;
                    }
                    let mut cand = current.clone();
                    let mut perm = *cand.permutation(level);
                    perm.swap(i, j);
                    cand.set_permutation(level, perm);
                    let key = cand.canonical_key();
                    if key == current_key {
                        continue; // the swapped loops are trivial here
                    }
                    spent += 1;
                    // ordering: Relaxed — statistics counter; the polish
                    // phase is single-threaded anyway.
                    shared.evals.fetch_add(1, Ordering::Relaxed);
                    if let Some(memo) = &shared.memo {
                        if memo.probe(key).is_some() {
                            // Already evaluated (and best-tracked) once.
                            // ordering: Relaxed — statistics counter.
                            shared.duplicates.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                    match score_candidate(&ctx, &cand) {
                        Scored::Valid(report) => {
                            // ordering: Relaxed — statistics counter.
                            shared.valid.fetch_add(1, Ordering::Relaxed);
                            let cost = config.objective.cost(&report);
                            if let Some(memo) = &shared.memo {
                                memo.insert(key, cost);
                            }
                            if cost < current_cost {
                                if try_improve(shared, cost) {
                                    record_improvement(
                                        shared,
                                        config,
                                        &cand,
                                        report,
                                        cost,
                                        base_ordinal + spent,
                                    );
                                }
                                current = cand;
                                current_cost = cost;
                                current_key = key;
                                improved = true;
                            }
                        }
                        Scored::Invalid => {
                            // ordering: Relaxed — statistics counter.
                            shared.invalid.fetch_add(1, Ordering::Relaxed);
                            if let Some(memo) = &shared.memo {
                                memo.insert(key, f64::INFINITY);
                            }
                        }
                        Scored::Panicked => {
                            // Contained like the sweep: the reservation
                            // above already charged `evals`.
                            quarantine(shared, key);
                            // ordering: Relaxed — statistic counter.
                            shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }
}
