//! Fixed-size lock-free memo cache for evaluated mappings.
//!
//! Keys are [`ruby_mapping::Mapping::canonical_key`] hashes; values are
//! the scalar objective cost (`f64` bits), with `+inf` standing for
//! "evaluated and invalid". The table is open-addressed with a short
//! linear probe window and **no eviction**: when a window fills, later
//! keys are simply not cached (a lossy cache is still a correct cache,
//! and never serving a torn or stale entry matters more than hit rate).
//!
//! Concurrency protocol: a writer claims a slot by CASing the key from
//! `EMPTY`, then publishes the cost. Costs start at a `NOT_READY`
//! sentinel (a NaN bit pattern no real cost produces), so a reader that
//! races the publication sees "pending" and treats it as a miss. Each
//! slot's cost is written exactly once, by the thread that won the key
//! CAS, so readers can never observe a torn (key, cost) pair.

use crate::sync::{AtomicU64, Ordering};

use ruby_telemetry::LazyCounter;

/// Memo instrumentation: no-ops unless the `telemetry` feature is on.
/// Hits and misses are the per-probe outcomes (a hit is exactly one
/// [`SearchOutcome::duplicates`](crate::SearchOutcome) increment in the
/// callers); drops count entries lost to a full probe window.
static MEMO_HIT: LazyCounter = LazyCounter::new("search.memo.hit");
static MEMO_MISS: LazyCounter = LazyCounter::new("search.memo.miss");
static MEMO_DROP: LazyCounter = LazyCounter::new("search.memo.drop");

const PROBE_WINDOW: usize = 8;
const EMPTY: u64 = 0;
/// NaN bit pattern never produced by `f64::to_bits` of a finite cost or
/// `+inf`; marks a claimed slot whose cost is not yet published.
const NOT_READY: u64 = u64::MAX;

struct Slot {
    key: AtomicU64,
    cost: AtomicU64,
}

/// A fixed-size, lock-free, lossy map from canonical mapping keys to
/// objective costs. See the module docs for the protocol.
pub struct MemoCache {
    slots: Vec<Slot>,
    mask: u64,
}

impl MemoCache {
    /// A cache with `2^bits` slots (`bits` clamped to `[4, 28]`).
    pub fn new(bits: u32) -> Self {
        let n = 1usize << bits.clamp(4, 28);
        let slots = (0..n)
            .map(|_| Slot {
                key: AtomicU64::new(EMPTY),
                cost: AtomicU64::new(NOT_READY),
            })
            .collect();
        MemoCache {
            slots,
            mask: n as u64 - 1,
        }
    }

    /// A cache like [`new`](Self::new), unless the `search.memo.alloc`
    /// failpoint simulates an allocation failure — then `None`, and
    /// callers degrade to searching without deduplication.
    pub fn try_new(bits: u32) -> Option<Self> {
        if matches!(
            ruby_failpoints::hit("search.memo.alloc"),
            ruby_failpoints::Action::Err
        ) {
            return None;
        }
        Some(Self::new(bits))
    }

    /// Every published entry as `(slot, key, cost bits)`, in slot order.
    /// Slot-exact so [`restore`](Self::restore) reproduces the table
    /// bit-for-bit and a resumed run replays identical probe/insert
    /// outcomes (including window-full drops).
    pub fn dump(&self) -> Vec<(u64, u64, u64)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                // ordering: Acquire — pairs with insert's publication;
                // callers dump at barriers, after workers joined.
                let key = slot.key.load(Ordering::Acquire);
                if key == EMPTY {
                    return None;
                }
                let cost = slot.cost.load(Ordering::Acquire);
                if cost == NOT_READY {
                    // Claimed but unpublished (a worker died mid-insert):
                    // not part of the deterministic state, skip it.
                    return None;
                }
                Some((i as u64, key, cost))
            })
            .collect()
    }

    /// Places dumped entries back at their exact slots. Out-of-range
    /// slots are skipped; only meaningful on a fresh cache of the same
    /// size the dump was taken from, before any worker starts.
    pub fn restore(&self, entries: &[(u64, u64, u64)]) {
        for &(i, key, cost) in entries {
            let Some(slot) = self.slots.get(i as usize) else {
                continue;
            };
            // ordering: Release — cost before key, matching the insert
            // protocol (restore runs single-threaded anyway).
            slot.cost.store(cost, Ordering::Release);
            slot.key.store(key, Ordering::Release);
        }
    }

    /// `EMPTY` doubles as the vacancy marker, so a genuine zero key is
    /// remapped onto a fixed non-zero value.
    fn normalize(key: u64) -> u64 {
        if key == EMPTY {
            1
        } else {
            key
        }
    }

    /// The recorded cost of `key` (`+inf` = known invalid), or `None`
    /// when the key is absent or its cost is still being published.
    pub fn probe(&self, key: u64) -> Option<f64> {
        let key = Self::normalize(key);
        let base = key & self.mask;
        for i in 0..PROBE_WINDOW as u64 {
            let slot = &self.slots[((base + i) & self.mask) as usize];
            // ordering: Acquire — pairs with the AcqRel key CAS in
            // `insert` so a key match happens-after the claim.
            let k = slot.key.load(Ordering::Acquire);
            if k == EMPTY {
                MEMO_MISS.inc();
                return None;
            }
            if k == key {
                // ordering: Acquire — pairs with the Release cost store
                // in `insert`; anything other than NOT_READY is the
                // fully published cost, never a torn intermediate.
                let c = slot.cost.load(Ordering::Acquire);
                if c == NOT_READY {
                    MEMO_MISS.inc();
                    return None;
                }
                MEMO_HIT.inc();
                return Some(f64::from_bits(c));
            }
        }
        MEMO_MISS.inc();
        None
    }

    /// Records `cost` for `key`. Silently drops the entry when the probe
    /// window is full; never overwrites an existing key's cost.
    pub fn insert(&self, key: u64, cost: f64) {
        let key = Self::normalize(key);
        let base = key & self.mask;
        for i in 0..PROBE_WINDOW as u64 {
            let slot = &self.slots[((base + i) & self.mask) as usize];
            // ordering: Acquire — see `probe`: a key hit means the slot
            // is claimed (its owner will publish the cost), so we bail.
            let k = slot.key.load(Ordering::Acquire);
            if k == key {
                return;
            }
            if k == EMPTY {
                // ordering: AcqRel / Acquire — success releases the
                // claim to racing probes and acquires the slot; failure
                // acquires the racing claimant's key for the == check.
                match slot
                    .key
                    .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        // ordering: Release — publishes the cost; pairs
                        // with the Acquire cost load in `probe`. Written
                        // exactly once, by the CAS winner.
                        slot.cost.store(cost.to_bits(), Ordering::Release);
                        return;
                    }
                    Err(found) if found == key => return,
                    Err(_) => continue,
                }
            }
        }
        // Window full of other keys: the entry is dropped (see the
        // module docs — lossy, never wrong).
        MEMO_DROP.inc();
    }
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_costs_and_infinity() {
        let memo = MemoCache::new(8);
        assert_eq!(memo.probe(42), None);
        memo.insert(42, 1.5);
        assert_eq!(memo.probe(42), Some(1.5));
        memo.insert(43, f64::INFINITY);
        assert_eq!(memo.probe(43), Some(f64::INFINITY));
    }

    #[test]
    fn zero_key_is_usable() {
        let memo = MemoCache::new(8);
        memo.insert(0, 2.0);
        assert_eq!(memo.probe(0), Some(2.0));
    }

    #[test]
    fn first_insert_wins() {
        let memo = MemoCache::new(8);
        memo.insert(7, 1.0);
        memo.insert(7, 9.0);
        assert_eq!(memo.probe(7), Some(1.0));
    }

    #[test]
    fn full_probe_window_is_lossy_not_wrong() {
        // 16 slots. Saturate every one; later inserts are dropped,
        // probes stay consistent with whatever was stored.
        let memo = MemoCache::new(4);
        for k in 1..100u64 {
            memo.insert(k, k as f64);
        }
        for k in 1..100u64 {
            if let Some(c) = memo.probe(k) {
                assert_eq!(c, k as f64);
            }
        }
    }

    #[test]
    fn dump_restore_reproduces_the_table_slot_exactly() {
        let memo = MemoCache::new(6);
        for k in 1..40u64 {
            memo.insert(k * 17, (k as f64) / 3.0);
        }
        memo.insert(999, f64::INFINITY);
        let dump = memo.dump();
        assert!(!dump.is_empty());
        let fresh = MemoCache::new(6);
        fresh.restore(&dump);
        assert_eq!(fresh.dump(), dump);
        for k in 1..40u64 {
            assert_eq!(fresh.probe(k * 17), memo.probe(k * 17));
        }
        assert_eq!(fresh.probe(999), Some(f64::INFINITY));
    }

    #[test]
    fn concurrent_inserts_never_tear() {
        let memo = MemoCache::new(10);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let memo = &memo;
                scope.spawn(move || {
                    for k in 1..2_000u64 {
                        memo.insert(k, k as f64);
                        if let Some(c) = memo.probe(k) {
                            assert_eq!(c, k as f64, "torn entry for {k} (thread {t})");
                        }
                    }
                });
            }
        });
    }
}
