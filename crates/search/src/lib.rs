//! Mapping search for the Ruby reproduction.
//!
//! The paper deliberately uses *only* Timeloop's random-sampling search so
//! that mapspace quality — not search cleverness — drives the results
//! ("To disentangle mapspace generation from the search heuristics we
//! only employ Timeloop's random sampling based search"). This crate
//! reimplements that: threads draw mappings from a
//! [`ruby_mapspace::Mapspace`], evaluate them with
//! [`ruby_model::evaluate`], keep the best under an [`Objective`], and
//! stop after a configurable number of *consecutive valid mappings that
//! fail to improve* (the paper uses 3000 across 24 threads).
//!
//! # Examples
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_search::{search, SearchConfig};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(16, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let outcome = search(&space, &SearchConfig::default());
//! let best = outcome.best.expect("the toy space has valid mappings");
//! assert_eq!(best.report.cycles(), 8); // ceil(113/16): full-array Ruby-S
//! ```

pub mod anneal;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_mapping::Mapping;
use ruby_mapspace::Mapspace;
use ruby_model::{evaluate, CostReport, ModelOptions};

/// The quantity the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Energy–delay product (the paper's primary target).
    #[default]
    Edp,
    /// Total energy.
    Energy,
    /// Cycle count (the latency experiments of §IV-D).
    Delay,
}

impl Objective {
    /// The scalar cost of a report under this objective (lower is
    /// better).
    pub fn cost(self, report: &CostReport) -> f64 {
        match self {
            Objective::Edp => report.edp(),
            Objective::Energy => report.energy(),
            Objective::Delay => report.cycles() as f64,
        }
    }
}

/// Search configuration. The defaults suit unit-test-scale problems;
/// experiments raise `termination` and `threads`.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Base RNG seed; thread `i` uses `seed + i`.
    pub seed: u64,
    /// Hard cap on total sampled mappings (valid or not); `None` =
    /// unlimited.
    pub max_evaluations: Option<u64>,
    /// Stop after this many consecutive valid mappings without
    /// improvement (Timeloop's victory condition). `None` disables it —
    /// then `max_evaluations` must be set.
    pub termination: Option<u64>,
    /// Worker threads.
    pub threads: usize,
    /// What to minimize.
    pub objective: Objective,
    /// Cost-model options.
    pub model: ModelOptions,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed: 0,
            max_evaluations: Some(200_000),
            termination: Some(1_000),
            threads: 1,
            objective: Objective::Edp,
            model: ModelOptions::default(),
        }
    }
}

/// The best mapping found and its evaluation.
#[derive(Debug, Clone)]
pub struct BestMapping {
    /// The winning mapping.
    pub mapping: Mapping,
    /// Its cost report.
    pub report: CostReport,
    /// Its scalar cost under the search objective.
    pub cost: f64,
}

/// The result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best valid mapping, if any was found.
    pub best: Option<BestMapping>,
    /// Total mappings sampled (valid + invalid).
    pub evaluations: u64,
    /// Valid mappings among them.
    pub valid: u64,
    /// `(evaluations-so-far, best-cost)` at every improvement — the
    /// best-so-far staircase of Fig. 7.
    pub trace: Vec<(u64, f64)>,
}

struct Shared {
    evals: AtomicU64,
    valid: AtomicU64,
    stop: AtomicBool,
    best: Mutex<BestState>,
}

struct BestState {
    best: Option<BestMapping>,
    consecutive_fails: u64,
    trace: Vec<(u64, f64)>,
}

/// Runs random search over `mapspace` under `config`.
///
/// # Panics
///
/// Panics if both `max_evaluations` and `termination` are `None` (the
/// search would never stop), or if `threads` is zero.
pub fn search(mapspace: &Mapspace, config: &SearchConfig) -> SearchOutcome {
    assert!(config.threads > 0, "need at least one search thread");
    assert!(
        config.max_evaluations.is_some() || config.termination.is_some(),
        "unbounded search: set max_evaluations or termination"
    );
    let shared = Shared {
        evals: AtomicU64::new(0),
        valid: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        best: Mutex::new(BestState { best: None, consecutive_fails: 0, trace: Vec::new() }),
    };

    if config.threads == 1 {
        worker(mapspace, config, &shared, 0);
    } else {
        crossbeam::scope(|scope| {
            for t in 0..config.threads {
                let shared = &shared;
                scope.spawn(move |_| worker(mapspace, config, shared, t as u64));
            }
        })
        .expect("search workers never panic");
    }

    let state = shared.best.into_inner().expect("no worker panicked");
    SearchOutcome {
        best: state.best,
        evaluations: shared.evals.into_inner(),
        valid: shared.valid.into_inner(),
        trace: state.trace,
    }
}

fn worker(mapspace: &Mapspace, config: &SearchConfig, shared: &Shared, thread_index: u64) {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(thread_index));
    let arch = mapspace.arch();
    let shape = mapspace.shape();
    while !shared.stop.load(Ordering::Relaxed) {
        let evals = shared.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = config.max_evaluations {
            if evals > max {
                shared.stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        let mapping = mapspace.sample(&mut rng);
        let Ok(report) = evaluate(arch, shape, &mapping, &config.model) else {
            continue; // invalid mappings do not count toward termination
        };
        shared.valid.fetch_add(1, Ordering::Relaxed);
        let cost = config.objective.cost(&report);
        let mut state = shared.best.lock().expect("no worker panicked");
        let improved = state.best.as_ref().is_none_or(|b| cost < b.cost);
        if improved {
            state.best = Some(BestMapping { mapping, report, cost });
            state.consecutive_fails = 0;
            state.trace.push((evals, cost));
        } else {
            state.consecutive_fails += 1;
            if let Some(limit) = config.termination {
                if state.consecutive_fails >= limit {
                    shared.stop.store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapspace::MapspaceKind;
    use ruby_workload::ProblemShape;

    fn toy_space(kind: MapspaceKind, pes: u64, d: u64) -> Mapspace {
        Mapspace::new(presets::toy_linear(pes, 1024), ProblemShape::rank1("d", d), kind)
    }

    #[test]
    fn finds_the_full_array_mapping_on_prime_bound() {
        let outcome = search(&toy_space(MapspaceKind::RubyS, 16, 113), &SearchConfig::default());
        let best = outcome.best.expect("valid mappings exist");
        assert_eq!(best.report.cycles(), 8);
        assert!(best.mapping.is_imperfect());
        assert!(outcome.valid > 0);
    }

    #[test]
    fn pfm_on_prime_bound_cannot_parallelize() {
        let outcome = search(&toy_space(MapspaceKind::Pfm, 16, 113), &SearchConfig::default());
        let best = outcome.best.expect("valid mappings exist");
        // 113 is prime and > 16, so the only PFM spatial factor is 1.
        assert_eq!(best.report.cycles(), 113);
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let outcome = search(&toy_space(MapspaceKind::Ruby, 9, 100), &SearchConfig::default());
        let costs: Vec<f64> = outcome.trace.iter().map(|&(_, c)| c).collect();
        assert!(!costs.is_empty());
        assert!(costs.windows(2).all(|w| w[1] < w[0]));
        let evals: Vec<u64> = outcome.trace.iter().map(|&(e, _)| e).collect();
        assert!(evals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn max_evaluations_bounds_work() {
        let config = SearchConfig {
            max_evaluations: Some(50),
            termination: None,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::Ruby, 9, 100), &config);
        assert!(outcome.evaluations <= 51);
    }

    #[test]
    fn multithreaded_matches_singlethreaded_quality() {
        let space = toy_space(MapspaceKind::RubyS, 16, 113);
        let single = search(&space, &SearchConfig::default());
        let multi = search(&space, &SearchConfig { threads: 4, ..SearchConfig::default() });
        // Both must find the 8-cycle optimum on this tiny space.
        assert_eq!(
            single.best.unwrap().report.cycles(),
            multi.best.unwrap().report.cycles()
        );
    }

    #[test]
    fn objective_selects_metric() {
        let space = toy_space(MapspaceKind::RubyS, 16, 113);
        let config =
            SearchConfig { objective: Objective::Delay, ..SearchConfig::default() };
        let outcome = search(&space, &config);
        assert_eq!(outcome.best.unwrap().report.cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "unbounded search")]
    fn unbounded_config_rejected() {
        let config = SearchConfig {
            max_evaluations: None,
            termination: None,
            ..SearchConfig::default()
        };
        let _ = search(&toy_space(MapspaceKind::Pfm, 4, 10), &config);
    }
}
