//! Mapping search for the Ruby reproduction.
//!
//! The paper deliberately uses *only* Timeloop's random-sampling search so
//! that mapspace quality — not search cleverness — drives the results
//! ("To disentangle mapspace generation from the search heuristics we
//! only employ Timeloop's random sampling based search"). This crate
//! reimplements that: threads draw mappings from a
//! [`ruby_mapspace::Mapspace`], evaluate them with
//! [`ruby_model::evaluate_with`], keep the best under an [`Objective`],
//! and stop after a configurable number of *consecutive valid mappings
//! that fail to improve* (the paper uses 3000 across 24 threads).
//!
//! # Hot-path design
//!
//! The sample→evaluate→compare loop is engineered so the common cases
//! touch no locks and allocate nothing:
//!
//! * each worker owns a [`ruby_mapspace::Sampler`] plus one reused
//!   [`Mapping`] buffer ([`ruby_mapspace::Sampler::sample_into`]) and an
//!   [`EvalContext`] built once per search;
//! * the best cost lives in an atomic `u64` holding `f64` bits; workers
//!   compare against it locally and only compare-and-swap — then take
//!   the mutex guarding the best *mapping* and trace — on an actual
//!   improvement, which is rare (the trace is a short staircase);
//! * the no-improvement counter is a plain atomic, so the Timeloop
//!   victory condition costs one `fetch_add` per valid mapping.
//!
//! With one thread the engine is exactly deterministic under a fixed
//! seed; with many, per-thread RNG streams are decorrelated by
//! SplitMix64 seed spreading and only the improvement *order* can vary.
//!
//! # Examples
//!
//! All strategies run through the [`Engine`] facade; configurations come
//! from the validating [`SearchConfig::builder`]:
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_search::{Engine, SearchConfig};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(16, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let config = SearchConfig::builder().build().expect("defaults are valid");
//! let outcome = Engine::new(&space).with_config(config).run();
//! let best = outcome.best.expect("the toy space has valid mappings");
//! assert_eq!(best.report.cycles(), 8); // ceil(113/16): full-array Ruby-S
//! ```
//!
//! Attach a [`ProgressSink`] with [`Engine::with_progress`] to stream
//! [`SearchSnapshot`] events while the search runs (see the `engine`
//! module docs); metric counters (memo hit/miss, model rejection stages)
//! additionally require the `telemetry` cargo feature.

pub mod anneal;
pub mod checkpoint;
mod engine;
mod exhaustive;
mod memo;
mod permuted;
pub mod stop;

/// Atomic primitives for the lock-free hot path. Production builds bind
/// the std atomics directly; test and `shuttle`-feature builds route
/// through the `ruby-analysis` interleaving shim, whose per-access yield
/// points let the mini-loom explorer model-check every schedule of the
/// memo-cache and best-tracker protocols (see `interleave_tests`).
/// Outside an active exploration the shim passes straight through, so
/// ordinary tests exercise the same semantics as production.
#[cfg(not(any(test, feature = "shuttle")))]
pub(crate) mod sync {
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}
#[cfg(any(test, feature = "shuttle"))]
pub(crate) mod sync {
    pub(crate) use ruby_analysis::interleave::shim::{AtomicBool, AtomicU64, Ordering};
}

#[cfg(test)]
mod interleave_tests;

use std::sync::{Mutex, PoisonError};

use crate::sync::{AtomicBool, AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ruby_mapping::Mapping;
use ruby_mapspace::Mapspace;
use ruby_model::{evaluate_with, CostReport, CostSummary, EvalContext, ModelOptions};

pub use checkpoint::{CheckpointError, SearchCheckpoint, CHECKPOINT_SCHEMA};
pub use engine::{ConfigError, Engine, SearchConfigBuilder};
pub use memo::MemoCache;
pub use stop::StopToken;
// Re-exported so Engine callers can attach sinks without a direct
// ruby-telemetry dependency.
pub use ruby_telemetry::{
    write_atomic, HumanSink, JsonlSink, MemorySink, MultiSink, ProgressSink, SearchSnapshot,
    SCHEMA_VERSION,
};

/// The quantity the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Energy–delay product (the paper's primary target).
    #[default]
    Edp,
    /// Total energy.
    Energy,
    /// Cycle count (the latency experiments of §IV-D).
    Delay,
}

impl Objective {
    /// The scalar cost of a report under this objective (lower is
    /// better).
    pub fn cost(self, report: &CostReport) -> f64 {
        match self {
            Objective::Edp => report.edp(),
            Objective::Energy => report.energy(),
            Objective::Delay => report.cycles() as f64,
        }
    }

    /// The scalar cost of a lean summary under this objective —
    /// bit-identical to [`Self::cost`] on the full report of the same
    /// mapping ([`CostSummary`] is computed by the same core pass).
    pub fn cost_of_summary(self, summary: &CostSummary) -> f64 {
        match self {
            Objective::Edp => summary.edp(),
            Objective::Energy => summary.energy(),
            Objective::Delay => summary.cycles() as f64,
        }
    }

    /// An admissible lower bound on this objective for any valid mapping
    /// with ≥ `min_steps` sequential steps, given the context's energy
    /// floor: true cycles ≥ compute steps and true energy ≥ the floor,
    /// and both factors are positive, so the products compose soundly.
    pub fn cost_floor(self, energy_floor: f64, min_steps: u64) -> f64 {
        match self {
            Objective::Edp => energy_floor * min_steps as f64,
            Objective::Energy => energy_floor,
            Objective::Delay => min_steps as f64,
        }
    }

    /// Stable lowercase name (CLI flag value / JSON field).
    pub const fn name(self) -> &'static str {
        match self {
            Objective::Edp => "edp",
            Objective::Energy => "energy",
            Objective::Delay => "delay",
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Objective {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "edp" => Ok(Objective::Edp),
            "energy" => Ok(Objective::Energy),
            "delay" => Ok(Objective::Delay),
            other => Err(ConfigError::UnknownObjective(other.to_owned())),
        }
    }
}

/// How the search covers the mapspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Random exploration. When the space tabulates this is the
    /// permuted walk ([`permuted`]): a seeded format-preserving
    /// permutation over the deduplicated enumeration index space, so
    /// every candidate is distinct and the walk can exhaust the space;
    /// otherwise it falls back to the rejection sampler.
    #[default]
    Random,
    /// Timeloop-style generative rejection sampling (the paper's search
    /// methodology): per-slot uniform factor draws with a dedup memo.
    /// Unlike [`SearchStrategy::Random`]'s uniform-over-leaves walk,
    /// the generative distribution concentrates on balanced
    /// factorizations, which is the sampling bias the paper's
    /// mapspace-quality comparisons are defined under — the figure
    /// experiments use this strategy.
    Sampled,
    /// Deterministic pruned enumeration over the deduplicated chain
    /// support ([`ruby_mapspace::EnumTables`]): cheap single-leaf probes
    /// rank the fanout regions, capacity screening and an admissible
    /// cost lower bound discard candidates before the model runs, and a
    /// patience rule over the considered-candidate ordinal stops the
    /// sweep. Falls back to random sampling when the space is too large
    /// to tabulate.
    Exhaustive,
    /// A random warm-up (one third of the budget) to seed the pruning
    /// bound, then enumeration over the remainder.
    Hybrid,
    /// Single-threaded simulated annealing ([`anneal`]), exposed here so
    /// the [`Engine`] facade covers every backend; `max_evaluations`
    /// maps onto the step budget, annealing-specific knobs keep their
    /// [`anneal::AnnealConfig`] defaults.
    Anneal,
}

impl SearchStrategy {
    /// Stable lowercase name (CLI flag value / bench JSON field).
    pub const fn name(self) -> &'static str {
        match self {
            SearchStrategy::Random => "random",
            SearchStrategy::Sampled => "sampled",
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::Hybrid => "hybrid",
            SearchStrategy::Anneal => "anneal",
        }
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SearchStrategy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "random" => Ok(SearchStrategy::Random),
            "sampled" => Ok(SearchStrategy::Sampled),
            "exhaustive" => Ok(SearchStrategy::Exhaustive),
            "hybrid" => Ok(SearchStrategy::Hybrid),
            "anneal" => Ok(SearchStrategy::Anneal),
            other => Err(ConfigError::UnknownStrategy(other.to_owned())),
        }
    }
}

/// Search configuration. The defaults suit unit-test-scale problems;
/// experiments raise `termination` and `threads`.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Base RNG seed; thread `i` draws from a stream seeded by
    /// SplitMix64-spreading `(seed, i)`.
    pub seed: u64,
    /// Hard cap on total sampled mappings (valid or not); `None` =
    /// unlimited.
    pub max_evaluations: Option<u64>,
    /// Random sampling: stop after this many consecutive valid mappings
    /// without improvement (Timeloop's victory condition). Enumeration:
    /// stop after this many *considered candidates* past the first
    /// achiever of the current best (a deterministic patience rule).
    /// `None` disables it — then `max_evaluations` must be set.
    pub termination: Option<u64>,
    /// Worker threads. Defaults to the machine's available parallelism;
    /// set to 1 for bit-exact reproducibility.
    pub threads: usize,
    /// Cap on the improvement trace kept in [`SearchOutcome::trace`].
    /// Once full, later improvements overwrite the last entry so the
    /// final best is always recorded.
    pub max_trace: usize,
    /// What to minimize.
    pub objective: Objective,
    /// Cost-model options.
    pub model: ModelOptions,
    /// How to cover the mapspace.
    pub strategy: SearchStrategy,
    /// Skip candidates (and enumeration subtrees) whose cost lower bound
    /// already exceeds the best found. Pruning never discards a
    /// potential optimum (the bound is admissible), so it only affects
    /// the `valid`/`pruned_*` counters, not the result.
    pub prune: bool,
    /// Memoize evaluated canonical keys so duplicate factorizations are
    /// not re-evaluated (counted in [`SearchOutcome::duplicates`]).
    pub dedup: bool,
    /// Memo cache size: `2^memo_bits` slots (16 bytes each).
    pub memo_bits: u32,
    /// Wall-clock cap in seconds. Polled at loop boundaries, so runs
    /// overshoot by at most one unit of work; an expired deadline drains
    /// gracefully (checkpoint + `stopped_early` outcome). `None` = no
    /// deadline. Non-positive or non-finite values are ignored (the
    /// builder rejects them up front).
    pub max_seconds: Option<f64>,
    /// How many times a panicking worker body is restarted — with the
    /// offending candidate quarantined — before the run gives up and
    /// drains with `stop_reason: "worker-failures"`.
    pub max_worker_restarts: u64,
}

impl SearchConfig {
    /// A validating builder starting from the defaults; the only way to
    /// obtain a config that is *guaranteed* runnable (direct struct
    /// construction defers the same checks to panics inside the engine).
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder::default()
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed: 0,
            max_evaluations: Some(200_000),
            termination: Some(1_000),
            threads: default_threads(),
            max_trace: 4096,
            objective: Objective::Edp,
            model: ModelOptions::default(),
            strategy: SearchStrategy::default(),
            prune: true,
            dedup: true,
            memo_bits: 18,
            max_seconds: None,
            max_worker_restarts: 8,
        }
    }
}

/// The machine's available parallelism, or 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Spreads `(seed, thread)` into a decorrelated per-thread RNG seed.
///
/// Plain `seed + thread` hands adjacent threads adjacent SplitMix64
/// starting points, which `SmallRng::seed_from_u64` expands into highly
/// overlapping xoshiro state schedules. Mixing the pair through a full
/// SplitMix64 round first puts every thread on an unrelated seed.
fn spread_seed(seed: u64, thread_index: u64) -> u64 {
    let mut state = seed ^ thread_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rand::splitmix64(&mut state)
}

/// The best mapping found and its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BestMapping {
    /// The winning mapping.
    pub mapping: Mapping,
    /// Its cost report.
    pub report: CostReport,
    /// Its scalar cost under the search objective.
    pub cost: f64,
}

/// The result of a search run.
///
/// Budget accounting: `evaluations` counts every candidate *scored* —
/// fully evaluated by the model (`valid` + `invalid`) or settled by the
/// memo cache (`duplicates`) — so for **every** strategy
/// `evaluations = valid + invalid + duplicates`. Candidates the
/// enumeration engine discards without scoring (table-level capacity
/// screening, cost-lower-bound cuts) are reported separately in
/// `pruned_mappings` / `pruned_subtrees`: they represent avoided model
/// work, not spent budget. [`SearchConfig::max_evaluations`] bounds the
/// candidates *considered* (scored plus bound-pruned), so `evaluations`
/// never exceeds it.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best valid mapping, if any was found.
    pub best: Option<BestMapping>,
    /// Total candidates scored (see the budget-accounting note).
    pub evaluations: u64,
    /// Fully evaluated, model-valid mappings among them.
    pub valid: u64,
    /// Candidates the model rejected (capacity / fanout violations).
    pub invalid: u64,
    /// Candidates skipped because their canonical key was already in the
    /// memo cache.
    pub duplicates: u64,
    /// Enumeration subtrees (whole regions / work chunks) discarded by
    /// the cost lower bound before iteration.
    pub pruned_subtrees: u64,
    /// Individual candidates discarded by the cost lower bound
    /// (including all members of pruned subtrees).
    pub pruned_mappings: u64,
    /// Whether the strategy provably covered the entire (deduplicated)
    /// mapspace — only the enumeration strategies can set this.
    pub exhausted: bool,
    /// `(evaluations-so-far, best-cost)` at every improvement — the
    /// best-so-far staircase of Fig. 7, capped at
    /// [`SearchConfig::max_trace`] entries.
    pub trace: Vec<(u64, f64)>,
    /// Whether the run was interrupted (stop token, deadline, or
    /// exhausted worker-restart budget) and drained instead of finishing
    /// on its own terms. Interrupted runs are still valid outcomes.
    pub stopped_early: bool,
    /// Why the run stopped early (`"stop-requested"`, `"deadline"` or
    /// `"worker-failures"`); `None` when it was not interrupted.
    pub stop_reason: Option<String>,
    /// Times a panicking worker body was restarted with the offending
    /// candidate quarantined (see [`SearchConfig::max_worker_restarts`]).
    pub worker_restarts: u64,
    /// Candidates quarantined after their evaluation panicked; each is
    /// counted as `invalid` and memoized so it is never retried.
    pub quarantined: u64,
}

impl serde::Serialize for BestMapping {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("cost".to_owned(), serde::Value::F64(self.cost)),
            ("mapping".to_owned(), self.mapping.to_value()),
            ("report".to_owned(), self.report.to_value()),
        ])
    }
}

impl serde::Deserialize for BestMapping {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(BestMapping {
            mapping: serde::Deserialize::from_value(value.field("mapping")?)?,
            report: serde::Deserialize::from_value(value.field("report")?)?,
            cost: value.field("cost")?.as_f64()?,
        })
    }
}

// SearchOutcome's JSON form is the project's one stable search-result
// schema: the CLI's `--json` output, `BENCH_search.json` entries and the
// telemetry JSONL summary record all serialize through here, leading
// with `"schema": SCHEMA_VERSION` so consumers can detect breaking
// changes. Extra fields (e.g. the JSONL sink's `"event"` tag) are
// ignored on the way back in.
impl serde::Serialize for SearchOutcome {
    fn to_value(&self) -> serde::Value {
        let best = match &self.best {
            Some(best) => best.to_value(),
            None => serde::Value::Null,
        };
        serde::Value::Obj(vec![
            ("schema".to_owned(), serde::Value::U64(SCHEMA_VERSION)),
            (
                "evaluations".to_owned(),
                serde::Value::U64(self.evaluations),
            ),
            ("valid".to_owned(), serde::Value::U64(self.valid)),
            ("invalid".to_owned(), serde::Value::U64(self.invalid)),
            ("duplicates".to_owned(), serde::Value::U64(self.duplicates)),
            (
                "pruned_subtrees".to_owned(),
                serde::Value::U64(self.pruned_subtrees),
            ),
            (
                "pruned_mappings".to_owned(),
                serde::Value::U64(self.pruned_mappings),
            ),
            ("exhausted".to_owned(), serde::Value::Bool(self.exhausted)),
            (
                "stopped_early".to_owned(),
                serde::Value::Bool(self.stopped_early),
            ),
            (
                "stop_reason".to_owned(),
                match &self.stop_reason {
                    Some(reason) => serde::Value::Str(reason.clone()),
                    None => serde::Value::Null,
                },
            ),
            (
                "worker_restarts".to_owned(),
                serde::Value::U64(self.worker_restarts),
            ),
            (
                "quarantined".to_owned(),
                serde::Value::U64(self.quarantined),
            ),
            ("best".to_owned(), best),
            ("trace".to_owned(), self.trace.to_value()),
        ])
    }
}

impl serde::Deserialize for SearchOutcome {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let schema = value.field("schema")?.as_u64()?;
        if schema != SCHEMA_VERSION {
            return Err(serde::Error::custom(format!(
                "unsupported search-outcome schema {schema} (expected {SCHEMA_VERSION})"
            )));
        }
        let best = match value.field("best")? {
            serde::Value::Null => None,
            other => Some(serde::Deserialize::from_value(other)?),
        };
        Ok(SearchOutcome {
            best,
            evaluations: value.field("evaluations")?.as_u64()?,
            valid: value.field("valid")?.as_u64()?,
            invalid: value.field("invalid")?.as_u64()?,
            duplicates: value.field("duplicates")?.as_u64()?,
            pruned_subtrees: value.field("pruned_subtrees")?.as_u64()?,
            pruned_mappings: value.field("pruned_mappings")?.as_u64()?,
            exhausted: value.field("exhausted")?.as_bool()?,
            trace: serde::Deserialize::from_value(value.field("trace")?)?,
            stopped_early: value.field("stopped_early")?.as_bool()?,
            stop_reason: match value.field("stop_reason")? {
                serde::Value::Null => None,
                other => Some(other.as_str()?.to_owned()),
            },
            worker_restarts: value.field("worker_restarts")?.as_u64()?,
            quarantined: value.field("quarantined")?.as_u64()?,
        })
    }
}

struct Shared {
    evals: AtomicU64,
    valid: AtomicU64,
    invalid: AtomicU64,
    duplicates: AtomicU64,
    pruned_subtrees: AtomicU64,
    pruned_mappings: AtomicU64,
    /// Strict best-cost improvements recorded (trace pushes/overwrites).
    improvements: AtomicU64,
    stop: AtomicBool,
    /// Bit pattern of the best cost so far (`f64::to_bits`); starts at
    /// `+inf`. Compared by value after `from_bits`, never by bits.
    best_bits: AtomicU64,
    /// Consecutive valid mappings without improvement. The reset on
    /// improvement races with concurrent increments only across threads,
    /// matching Timeloop's approximate multi-threaded victory condition;
    /// single-threaded it is exact.
    fails: AtomicU64,
    /// Shared memo cache; `None` when [`SearchConfig::dedup`] is off.
    memo: Option<MemoCache>,
    /// Taken only when a thread has already won the best-cost CAS.
    record: Mutex<Record>,
    /// Progress-streaming state; `Some` only when the [`Engine`] runs
    /// with a sink attached (see `engine::ProgressState`).
    progress: Option<engine::ProgressState>,
    /// External cancellation handle; `None` unless the [`Engine`] was
    /// given one ([`Engine::with_stop_token`]).
    token: Option<stop::StopToken>,
    /// Wall-clock cutoff derived from [`SearchConfig::max_seconds`].
    deadline: Option<std::time::Instant>,
    /// Whether the run was interrupted (distinct from `stop`, which any
    /// natural termination rule also raises).
    stopped_early: AtomicBool,
    /// First interrupt cause to fire (`STOP_REASON_*`; 0 = none).
    stop_reason: AtomicU64,
    /// Times a panicking worker body was restarted.
    worker_restarts: AtomicU64,
    /// Candidates quarantined after a panic during evaluation.
    quarantined: AtomicU64,
    /// Canonical keys of quarantined candidates (for the checkpoint and
    /// post-mortem reporting).
    poison: Mutex<Vec<u64>>,
}

/// `Shared::stop_reason` codes, mapped to strings by
/// [`stop_reason_name`].
pub(crate) const STOP_REASON_REQUESTED: u64 = 1;
pub(crate) const STOP_REASON_DEADLINE: u64 = 2;
pub(crate) const STOP_REASON_WORKER_FAILURES: u64 = 3;

pub(crate) fn stop_reason_name(code: u64) -> Option<String> {
    match code {
        STOP_REASON_REQUESTED => Some("stop-requested".to_owned()),
        STOP_REASON_DEADLINE => Some("deadline".to_owned()),
        STOP_REASON_WORKER_FAILURES => Some("worker-failures".to_owned()),
        _ => None,
    }
}

impl Shared {
    fn new(config: &SearchConfig) -> Self {
        Shared {
            evals: AtomicU64::new(0),
            valid: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            pruned_subtrees: AtomicU64::new(0),
            pruned_mappings: AtomicU64::new(0),
            improvements: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            best_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            fails: AtomicU64::new(0),
            // `try_new` degrades to no deduplication when the simulated
            // allocation failure (`search.memo.alloc` failpoint) fires.
            memo: config
                .dedup
                .then(|| MemoCache::try_new(config.memo_bits))
                .flatten(),
            record: Mutex::new(Record {
                best: None,
                trace: Vec::new(),
                best_ordinal: 0,
            }),
            progress: None,
            token: None,
            deadline: config
                .max_seconds
                .filter(|s| s.is_finite() && *s > 0.0)
                .map(|s| std::time::Instant::now() + std::time::Duration::from_secs_f64(s)),
            stopped_early: AtomicBool::new(false),
            stop_reason: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            poison: Mutex::new(Vec::new()),
        }
    }

    /// Polls the interrupt sources (stop token, wall-clock deadline) and
    /// latches the first one to fire. Cheap enough for loop boundaries:
    /// two relaxed loads on the common path, plus an `Instant::now()`
    /// when a deadline is configured.
    fn check_interrupt(&self) -> bool {
        // ordering: Relaxed — advisory latch; the join barrier at scope
        // exit is the real synchronization point.
        if self.stopped_early.load(Ordering::Relaxed) {
            return true;
        }
        let reason = if self
            .token
            .as_ref()
            // ordering: Relaxed — see the field docs: evals is a value-
            // only counter feeding the deterministic trip-wire.
            .is_some_and(|t| t.should_stop_at(self.evals.load(Ordering::Relaxed)))
        {
            STOP_REASON_REQUESTED
        } else if self
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
        {
            STOP_REASON_DEADLINE
        } else {
            return false;
        };
        self.mark_stopped_early(reason);
        true
    }

    /// Latches an interrupt: records the first cause, marks the run
    /// `stopped_early`, and raises the strategies' shared stop flag.
    fn mark_stopped_early(&self, reason: u64) {
        // ordering: Relaxed — advisory flags; only the first CAS winner's
        // reason is reported, which is all the semantics promised.
        self.stopped_early.store(true, Ordering::Relaxed);
        let _ = self
            .stop_reason
            .compare_exchange(0, reason, Ordering::Relaxed, Ordering::Relaxed);
        // ordering: Relaxed — advisory latch (see above).
        self.stop.store(true, Ordering::Relaxed);
    }

    fn is_stopped_early(&self) -> bool {
        // ordering: Relaxed — advisory latch (see check_interrupt).
        self.stopped_early.load(Ordering::Relaxed)
    }
}

/// Quarantines a candidate whose evaluation panicked: classifies it
/// invalid, memoizes `+inf` so no strategy retries it, and records its
/// key in the poison list. The caller accounts for the evaluation
/// reservation and the restart itself.
fn quarantine(shared: &Shared, key: u64) {
    // ordering: Relaxed — statistics counters, read after join barriers.
    shared.invalid.fetch_add(1, Ordering::Relaxed);
    shared.quarantined.fetch_add(1, Ordering::Relaxed);
    if let Some(memo) = &shared.memo {
        memo.insert(key, f64::INFINITY);
    }
    shared
        .poison
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(key);
}

/// How one candidate scored, with panics contained.
pub(crate) enum Scored {
    /// The model accepted it.
    Valid(CostReport),
    /// The model rejected it (capacity / fanout violations).
    Invalid,
    /// Evaluation panicked (a model bug or the `search.eval` failpoint);
    /// the caller quarantines the candidate.
    Panicked,
}

/// The model-call site shared by every strategy: runs the `search.eval`
/// failpoint (so resilience tests can inject evaluation panics) and
/// converts outcomes into [`Scored`].
pub(crate) fn score_candidate(ctx: &EvalContext, mapping: &Mapping) -> Scored {
    let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(
            ruby_failpoints::hit("search.eval"),
            ruby_failpoints::Action::Panic
        ) {
            // justified: deliberate: this is the injected
            // fault the supervised workers must recover from.
            panic!("failpoint search.eval: injected evaluation panic");
        }
        evaluate_with(ctx, mapping)
    }));
    match evaluated {
        Ok(Ok(report)) => Scored::Valid(report),
        Ok(Err(_)) => Scored::Invalid,
        Err(payload) => {
            // Silence the payload; the panic is already contained and
            // accounted for via quarantine.
            drop(payload);
            Scored::Panicked
        }
    }
}

struct Record {
    best: Option<BestMapping>,
    trace: Vec<(u64, f64)>,
    /// Position in the strategy's candidate sequence where the current
    /// best cost was *first* achievable: set on strict improvement,
    /// pulled back to the minimum on exact cost ties (including memo
    /// duplicates of the best). The enumeration backend's patience
    /// termination measures candidates considered past this point —
    /// deterministic because the candidate sequence and costs are.
    best_ordinal: u64,
}

/// Runs the random-sampling workers until `budget` (or termination).
///
/// `phase` tags which role the sampler is playing (plain / hybrid
/// warmup / enumeration fallback) so an interrupted run's checkpoint
/// can resume into the same role; `resume_rngs` restores per-worker RNG
/// states from such a checkpoint. With a checkpointer attached and one
/// thread, periodic checkpoints are written every
/// [`Checkpointer`](checkpoint::Checkpointer) stride; an interrupted
/// run always writes an exact final cursor at the drain point.
fn run_random(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    phase: checkpoint::RandomPhase,
    cpr: Option<&checkpoint::Checkpointer>,
    resume_rngs: Option<Vec<[u64; 4]>>,
) {
    let rng_for = |t: usize| match resume_rngs.as_ref().and_then(|r| r.get(t)) {
        Some(state) => SmallRng::from_state(*state),
        None => SmallRng::seed_from_u64(spread_seed(config.seed, t as u64)),
    };
    let final_rngs: Vec<[u64; 4]> = if config.threads == 1 {
        // Only the single-threaded worker checkpoints in-loop: with one
        // thread the loop is deterministic, so the periodic snapshots
        // sit on the uninterrupted run's own trajectory.
        vec![worker(
            mapspace,
            config,
            shared,
            budget,
            rng_for(0),
            phase,
            cpr,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads)
                .map(|t| {
                    let rng = rng_for(t);
                    scope.spawn(move || worker(mapspace, config, shared, budget, rng, phase, None))
                })
                .collect();
            handles
                .into_iter()
                // A join error means a panic escaped the supervised
                // worker body (a harness bug); degrade to a fresh state.
                .map(|h| h.join().unwrap_or_default())
                .collect()
        })
    };
    if shared.is_stopped_early() {
        if let Some(cpr) = cpr {
            cpr.save(checkpoint::SearchCheckpoint::capture(
                shared,
                config,
                checkpoint::Cursor::Random(checkpoint::RandomCursor {
                    phase,
                    budget,
                    rngs: final_rngs,
                }),
            ));
        }
    }
}

/// One supervised sampling worker: the loop body runs under
/// `catch_unwind`, and a panic that escapes the per-candidate
/// containment in [`score_candidate`] quarantines the candidate in
/// flight and restarts the body — up to
/// [`SearchConfig::max_worker_restarts`] times, after which the run
/// drains with `stop_reason: "worker-failures"`. Returns the final RNG
/// state for the drain checkpoint.
fn worker(
    mapspace: &Mapspace,
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    mut rng: SmallRng,
    phase: checkpoint::RandomPhase,
    cpr: Option<&checkpoint::Checkpointer>,
) -> [u64; 4] {
    let ctx = EvalContext::new(mapspace.arch(), mapspace.shape(), config.model);
    let mut sampler = mapspace.sampler();
    // justified: every architecture has >= 1 level, so the
    // all-ones default factorization always builds; failure here is a
    // programming error, not an input error.
    let mut mapping = Mapping::builder(mapspace.arch().num_levels())
        .build_for_bounds(mapspace.shape().bounds())
        .expect("the default mapping is well-formed");
    shared.progress_thread_started();
    let mut restarts_left = config.max_worker_restarts;
    loop {
        let mut last_key: Option<u64> = None;
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(
                config,
                shared,
                budget,
                &ctx,
                &mut sampler,
                &mut mapping,
                &mut rng,
                phase,
                cpr,
                &mut restarts_left,
                &mut last_key,
            )
        }));
        match body {
            Ok(()) => break,
            Err(_) => {
                // Best-effort accounting: when the panic struck before a
                // candidate key existed (e.g. inside the sampler), the
                // budget reservation stays unclassified — a one-off slack
                // in the `valid + invalid + duplicates` identity beats
                // miscounting an unknown candidate.
                if let Some(key) = last_key {
                    quarantine(shared, key);
                }
                // ordering: Relaxed — statistics counter, read after the
                // join barrier.
                shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if restarts_left == 0 {
                    shared.mark_stopped_early(STOP_REASON_WORKER_FAILURES);
                    break;
                }
                restarts_left -= 1;
            }
        }
    }
    shared.progress_thread_stopped();
    rng.to_state()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    config: &SearchConfig,
    shared: &Shared,
    budget: Option<u64>,
    ctx: &EvalContext,
    sampler: &mut ruby_mapspace::Sampler<'_>,
    mapping: &mut Mapping,
    rng: &mut SmallRng,
    phase: checkpoint::RandomPhase,
    cpr: Option<&checkpoint::Checkpointer>,
    restarts_left: &mut u64,
    last_key: &mut Option<u64>,
) {
    // ordering: Relaxed — the stop flag is advisory: seeing it late only
    // costs a few extra samples, and the spawning scope's join is the
    // real synchronization point for the final counter reads.
    while !shared.stop.load(Ordering::Relaxed) {
        *last_key = None;
        // Interrupt poll sits before the budget reservation so draining
        // never needs an undo — the checkpoint then freezes a state the
        // uninterrupted run also passes through.
        if shared.check_interrupt() {
            break;
        }
        if let Some(cpr) = cpr {
            // ordering: Relaxed — value-only counter read (see below).
            let done = shared.evals.load(Ordering::Relaxed);
            if done > 0 && done.is_multiple_of(cpr.stride()) {
                cpr.save(checkpoint::SearchCheckpoint::capture(
                    shared,
                    config,
                    checkpoint::Cursor::Random(checkpoint::RandomCursor {
                        phase,
                        budget,
                        rngs: vec![rng.to_state()],
                    }),
                ));
            }
        }
        // ordering: Relaxed — budget reservation counter; only its
        // arithmetic value matters, no payload is published through it.
        let evals = shared.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = budget {
            if evals > max {
                // Undo the reservation so the reported total never
                // exceeds the cap, however many threads raced here.
                // ordering: Relaxed — same counter/flag discipline as
                // the reservation above.
                shared.evals.fetch_sub(1, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        // One masked branch per candidate; the publish itself (a lossy
        // CAS + word stores) runs once per stride per thread and is a
        // no-op without an attached sink.
        if evals & (engine::PROGRESS_STRIDE - 1) == 0 {
            shared.publish_progress();
        }
        sampler.sample_into(mapping, rng);
        let key = mapping.canonical_key();
        *last_key = Some(key);
        if let Some(memo) = &shared.memo {
            if let Some(cost) = memo.probe(key) {
                // Already evaluated (by any thread or phase): the first
                // occurrence updated the best, so skip the model — but
                // keep Timeloop's victory condition intact: a revisited
                // *valid* mapping is still a consecutive valid sample
                // that failed to improve, while a revisited invalid one
                // stays invisible to the counter.
                // ordering: Relaxed — statistics counter, read only
                // after the thread join barrier.
                shared.duplicates.fetch_add(1, Ordering::Relaxed);
                if cost != f64::INFINITY {
                    // ordering: Relaxed — Timeloop's victory counter is
                    // deliberately approximate across threads; the stop
                    // flag it feeds is advisory.
                    let fails = shared.fails.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(limit) = config.termination {
                        if fails >= limit {
                            // ordering: Relaxed — advisory stop flag.
                            shared.stop.store(true, Ordering::Relaxed);
                        }
                    }
                }
                continue;
            }
        }
        let report = match score_candidate(ctx, mapping) {
            Scored::Valid(report) => report,
            Scored::Invalid => {
                // ordering: Relaxed — statistics counter, read only
                // after the thread join barrier.
                shared.invalid.fetch_add(1, Ordering::Relaxed);
                if let Some(memo) = &shared.memo {
                    memo.insert(key, f64::INFINITY);
                }
                continue; // invalid mappings do not count toward termination
            }
            Scored::Panicked => {
                quarantine(shared, key);
                // ordering: Relaxed — statistics counter, read after the
                // join barrier.
                shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if *restarts_left == 0 {
                    shared.mark_stopped_early(STOP_REASON_WORKER_FAILURES);
                    break;
                }
                *restarts_left -= 1;
                continue;
            }
        };
        // ordering: Relaxed — statistics counter, read only after the
        // thread join barrier.
        shared.valid.fetch_add(1, Ordering::Relaxed);
        let cost = config.objective.cost(&report);
        if let Some(memo) = &shared.memo {
            memo.insert(key, cost);
        }
        if try_improve(shared, cost)
            && record_improvement(shared, config, mapping, report, cost, evals)
        {
            // ordering: Relaxed — approximate victory-counter reset;
            // racing increments are acceptable (Timeloop semantics).
            shared.fails.store(0, Ordering::Relaxed);
        } else {
            // ordering: Relaxed — approximate victory counter feeding
            // the advisory stop flag; no payload rides on either.
            let fails = shared.fails.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(limit) = config.termination {
                if fails >= limit {
                    // ordering: Relaxed — advisory stop flag.
                    shared.stop.store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Lowers the atomic best-cost word to `cost` if it improves on it;
/// returns `true` on a lowering *or an exact tie* (ties proceed to the
/// record lock, where the canonical key breaks them deterministically).
fn try_improve(shared: &Shared, cost: f64) -> bool {
    // ordering: Relaxed — best_bits carries only the cost's bit pattern,
    // compared by value after from_bits; the winning mapping itself is
    // published under the record mutex, so no release/acquire edge needs
    // to ride on this word.
    let mut current = shared.best_bits.load(Ordering::Relaxed);
    loop {
        let best = f64::from_bits(current);
        if cost > best {
            return false;
        }
        if cost == best {
            return true;
        }
        match shared.best_bits.compare_exchange_weak(
            current,
            cost.to_bits(),
            // ordering: Relaxed — value-only word, see the load above.
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(seen) => current = seen,
        }
    }
}

/// Stores an improvement under the record lock; returns whether the
/// recorded best strictly improved. Re-checks against the recorded best:
/// a slower thread can win the CAS first yet arrive here after a better
/// mapping was recorded, and must not regress it. Exact cost ties pull
/// the first-achiever ordinal back to the minimum and are broken by the
/// smaller canonical key, making both the winning *mapping* and the
/// termination arithmetic independent of evaluation order; tie
/// replacements do not extend the trace (its costs stay strictly
/// decreasing).
fn record_improvement(
    shared: &Shared,
    config: &SearchConfig,
    mapping: &Mapping,
    report: CostReport,
    cost: f64,
    at: u64,
) -> bool {
    // A panicking worker cannot leave the record half-written (updates
    // complete before unlock), so a poisoned lock is still consistent.
    let mut guard = shared.record.lock().unwrap_or_else(PoisonError::into_inner);
    let record = &mut *guard;
    if let Some(best) = &record.best {
        if cost > best.cost {
            return false;
        }
        if cost == best.cost {
            record.best_ordinal = record.best_ordinal.min(at);
            if mapping.canonical_key() >= best.mapping.canonical_key() {
                return false;
            }
            record.best = Some(BestMapping {
                mapping: mapping.clone(),
                report,
                cost,
            });
            return false;
        }
    }
    record.best_ordinal = at;
    // Keep the trace's evaluation counts non-decreasing even when
    // improvements from different threads arrive out of order.
    let pos = record.trace.last().map_or(at, |&(prev, _)| prev.max(at));
    if record.trace.len() < config.max_trace.max(1) {
        record.trace.push((pos, cost));
    } else if let Some(last) = record.trace.last_mut() {
        // Reaching this branch implies len >= max(max_trace, 1) >= 1.
        *last = (pos, cost);
    }
    record.best = Some(BestMapping {
        mapping: mapping.clone(),
        report,
        cost,
    });
    // ordering: Relaxed — statistics counter feeding progress snapshots;
    // the record mutex above already serializes the improvement itself.
    shared.improvements.fetch_add(1, Ordering::Relaxed);
    true
}

/// Pulls the first-achiever ordinal back when `cost` ties the recorded
/// best. A memo duplicate of the best mapping costs no model work, but
/// it still marks a point in the deterministic candidate sequence where
/// the best was reachable — without this, which of two equal-key
/// occurrences lands first in the memo (a thread race) would shift the
/// patience-termination arithmetic.
fn note_tie_ordinal(shared: &Shared, cost: f64, ordinal: u64) {
    // The memo only holds costs that already went through
    // `record_improvement`, so `cost` can never beat the recorded best;
    // equality is the only interesting case and needs no CAS.
    // ordering: Relaxed — value-only snapshot of the best cost; the
    // authoritative comparison repeats under the record lock below.
    if f64::from_bits(shared.best_bits.load(Ordering::Relaxed)) == cost {
        let mut record = shared.record.lock().unwrap_or_else(PoisonError::into_inner);
        if record.best.as_ref().is_some_and(|b| b.cost == cost) {
            record.best_ordinal = record.best_ordinal.min(ordinal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;
    use ruby_mapspace::MapspaceKind;
    use ruby_workload::ProblemShape;
    use serde::Serialize as _;

    fn toy_space(kind: MapspaceKind, pes: u64, d: u64) -> Mapspace {
        Mapspace::new(
            presets::toy_linear(pes, 1024),
            ProblemShape::rank1("d", d),
            kind,
        )
    }

    /// One-shot engine run, mirroring the retired free-function entry
    /// point these tests were originally written against.
    fn search(mapspace: &Mapspace, config: &SearchConfig) -> SearchOutcome {
        Engine::new(mapspace).with_config(config.clone()).run()
    }

    #[test]
    fn finds_the_full_array_mapping_on_prime_bound() {
        let outcome = search(
            &toy_space(MapspaceKind::RubyS, 16, 113),
            &SearchConfig::default(),
        );
        let best = outcome.best.expect("valid mappings exist");
        assert_eq!(best.report.cycles(), 8);
        assert!(best.mapping.is_imperfect());
        assert!(outcome.valid > 0);
    }

    #[test]
    fn pfm_on_prime_bound_cannot_parallelize() {
        let outcome = search(
            &toy_space(MapspaceKind::Pfm, 16, 113),
            &SearchConfig::default(),
        );
        let best = outcome.best.expect("valid mappings exist");
        // 113 is prime and > 16, so the only PFM spatial factor is 1.
        assert_eq!(best.report.cycles(), 113);
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let outcome = search(
            &toy_space(MapspaceKind::Ruby, 9, 100),
            &SearchConfig::default(),
        );
        let costs: Vec<f64> = outcome.trace.iter().map(|&(_, c)| c).collect();
        assert!(!costs.is_empty());
        assert!(costs.windows(2).all(|w| w[1] < w[0]));
        let evals: Vec<u64> = outcome.trace.iter().map(|&(e, _)| e).collect();
        assert!(evals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn max_evaluations_bounds_work() {
        let config = SearchConfig {
            max_evaluations: Some(50),
            termination: None,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::Ruby, 9, 100), &config);
        assert!(outcome.evaluations <= 50, "{}", outcome.evaluations);
    }

    #[test]
    fn multithreaded_matches_singlethreaded_quality() {
        let space = toy_space(MapspaceKind::RubyS, 16, 113);
        let single = search(
            &space,
            &SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
        );
        let multi = search(
            &space,
            &SearchConfig {
                threads: 4,
                ..SearchConfig::default()
            },
        );
        // Both must find the 8-cycle optimum on this tiny space.
        assert_eq!(
            single.best.unwrap().report.cycles(),
            multi.best.unwrap().report.cycles()
        );
    }

    #[test]
    fn single_thread_runs_are_deterministic() {
        let space = toy_space(MapspaceKind::Ruby, 9, 100);
        let config = SearchConfig {
            seed: 42,
            threads: 1,
            ..SearchConfig::default()
        };
        let a = search(&space, &config);
        let b = search(&space, &config);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.trace, b.trace);
        let (a, b) = (a.best.unwrap(), b.best.unwrap());
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.report.energy().to_bits(), b.report.energy().to_bits());
    }

    #[test]
    fn different_seeds_change_the_sample_stream() {
        let space = toy_space(MapspaceKind::Ruby, 9, 100);
        let outcome = |seed| {
            search(
                &space,
                &SearchConfig {
                    seed,
                    threads: 1,
                    max_evaluations: Some(500),
                    termination: None,
                    ..SearchConfig::default()
                },
            )
        };
        // Improvement staircases under different seeds almost surely
        // differ; identical traces would suggest correlated streams.
        let traces: Vec<Vec<(u64, f64)>> = (0..4).map(|s| outcome(s).trace).collect();
        assert!(traces.windows(2).any(|w| w[0] != w[1]), "{traces:?}");
    }

    #[test]
    fn invalid_mappings_do_not_count_toward_termination() {
        // 64 total words => 32-word scratchpads: this cramped space
        // holds 281 distinct chains of which only 60 are valid, so
        // most candidates overflow capacity and must not advance the
        // no-improvement counter. If invalid candidates counted, 40
        // consecutive failures would accumulate almost immediately
        // (~79% of the walk is invalid) and the run would stop with
        // far fewer than 40 valid mappings seen.
        let space = Mapspace::new(
            presets::toy_linear(4, 64),
            ProblemShape::rank1("d", 100),
            MapspaceKind::Ruby,
        );
        let config = SearchConfig {
            termination: Some(40),
            max_evaluations: Some(100_000),
            threads: 1,
            // Dedup is irrelevant on the permuted walk (no repeats);
            // keep it off so the raw Timeloop counter semantics show.
            dedup: false,
            ..SearchConfig::default()
        };
        let outcome = search(&space, &config);
        assert!(
            outcome.evaluations > outcome.valid,
            "expected invalid candidates in this cramped space"
        );
        // Stopping needs `termination` *valid* non-improving mappings
        // after the last improvement (or full coverage, which sees all
        // 60 valid chains); either way at least 40 valid were scored.
        assert!(outcome.valid >= 40, "{}", outcome.valid);
    }

    #[test]
    fn trace_is_capped_but_keeps_the_final_best() {
        let space = toy_space(MapspaceKind::Ruby, 9, 100);
        let config = SearchConfig {
            threads: 1,
            max_trace: 2,
            ..SearchConfig::default()
        };
        let capped = search(&space, &config);
        let full = search(
            &space,
            &SearchConfig {
                max_trace: 4096,
                ..config.clone()
            },
        );
        assert!(full.trace.len() > 2, "toy run should improve > 2 times");
        assert_eq!(capped.trace.len(), 2);
        // Same stream, so the capped run's last entry is the true best.
        assert_eq!(capped.trace.last().unwrap().1, full.trace.last().unwrap().1);
        assert_eq!(capped.trace[0], full.trace[0]);
    }

    #[test]
    fn spread_seeds_are_decorrelated() {
        let seeds: Vec<u64> = (0..64).map(|t| spread_seed(7, t)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in spread seeds");
        // Adjacent thread indices must not yield near-adjacent seeds.
        assert!(seeds
            .windows(2)
            .all(|w| w[0].abs_diff(w[1]) > u32::MAX as u64));
    }

    #[test]
    fn objective_selects_metric() {
        let space = toy_space(MapspaceKind::RubyS, 16, 113);
        let config = SearchConfig {
            objective: Objective::Delay,
            ..SearchConfig::default()
        };
        let outcome = search(&space, &config);
        assert_eq!(outcome.best.unwrap().report.cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "unbounded search")]
    fn unbounded_config_rejected() {
        let config = SearchConfig {
            max_evaluations: None,
            termination: None,
            ..SearchConfig::default()
        };
        let _ = search(&toy_space(MapspaceKind::Pfm, 4, 10), &config);
    }

    #[test]
    fn exhaustive_finds_the_optimum_and_exhausts_tiny_spaces() {
        let config = SearchConfig {
            strategy: SearchStrategy::Exhaustive,
            max_evaluations: None,
            termination: None,
            threads: 1,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::RubyS, 16, 113), &config);
        assert_eq!(outcome.best.expect("valid mappings").report.cycles(), 8);
        assert!(outcome.exhausted, "113-wide toy space fits any budget");
        assert!(outcome.valid > 0);
        // Every scored candidate is accounted for exactly once; pruned
        // candidates are avoided work, reported separately.
        assert_eq!(
            outcome.evaluations,
            outcome.valid + outcome.invalid + outcome.duplicates
        );
    }

    #[test]
    fn exhaustive_best_is_deterministic_across_threads_and_runs() {
        let space = toy_space(MapspaceKind::Ruby, 9, 100);
        let outcome = |threads| {
            search(
                &space,
                &SearchConfig {
                    strategy: SearchStrategy::Exhaustive,
                    threads,
                    max_evaluations: Some(20_000),
                    termination: None,
                    ..SearchConfig::default()
                },
            )
        };
        let base = outcome(1);
        let best = base.best.as_ref().expect("valid mappings");
        for threads in [1, 2, 4] {
            let other = outcome(threads);
            let b = other.best.expect("valid mappings");
            assert_eq!(b.cost, best.cost, "threads={threads}");
            assert_eq!(b.mapping, best.mapping, "threads={threads}");
            // Chunk-barrier snapshots make every counter — not just the
            // winner — thread-count invariant.
            assert_eq!(other.evaluations, base.evaluations, "threads={threads}");
            assert_eq!(other.valid, base.valid, "threads={threads}");
            assert_eq!(other.invalid, base.invalid, "threads={threads}");
            assert_eq!(other.duplicates, base.duplicates, "threads={threads}");
            assert_eq!(
                other.pruned_mappings, base.pruned_mappings,
                "threads={threads}"
            );
            assert_eq!(
                other.pruned_subtrees, base.pruned_subtrees,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pruning_does_not_change_the_best() {
        let space = toy_space(MapspaceKind::Ruby, 9, 60);
        let outcome = |prune| {
            search(
                &space,
                &SearchConfig {
                    strategy: SearchStrategy::Exhaustive,
                    prune,
                    threads: 1,
                    max_evaluations: Some(50_000),
                    termination: None,
                    ..SearchConfig::default()
                },
            )
        };
        let pruned = outcome(true);
        let full = outcome(false);
        assert_eq!(full.pruned_mappings, 0);
        assert_eq!(
            pruned.best.expect("valid mappings").mapping,
            full.best.expect("valid mappings").mapping
        );
        assert!(
            pruned.valid <= full.valid,
            "pruning can only skip evaluations"
        );
    }

    #[test]
    fn exhaustive_respects_the_budget() {
        // Pruning off so every leaf charges the budget: coverage must
        // then be truncated on a space larger than the budget.
        let config = SearchConfig {
            strategy: SearchStrategy::Exhaustive,
            max_evaluations: Some(100),
            termination: None,
            threads: 2,
            prune: false,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::Ruby, 9, 100), &config);
        assert!(outcome.evaluations <= 100, "{}", outcome.evaluations);
        assert!(!outcome.exhausted, "this space exceeds 100 mappings");
    }

    #[test]
    fn hybrid_combines_sampling_and_enumeration() {
        let config = SearchConfig {
            strategy: SearchStrategy::Hybrid,
            max_evaluations: Some(3_000),
            termination: None,
            threads: 1,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::RubyS, 16, 113), &config);
        assert_eq!(outcome.best.expect("valid mappings").report.cycles(), 8);
        assert!(outcome.evaluations <= 3_000);
    }

    #[test]
    fn random_walk_never_repeats_a_candidate() {
        // The permuted walk visits every deduplicated chain at most
        // once, so the random path reports *exactly* zero duplicates —
        // the rejection sampler this replaced burned its budget
        // revisiting this tiny space's handful of chains. Full
        // coverage under budget also proves the walk exhausts.
        let config = SearchConfig {
            max_evaluations: Some(2_000),
            termination: None,
            threads: 1,
            ..SearchConfig::default()
        };
        let outcome = search(&toy_space(MapspaceKind::Pfm, 4, 12), &config);
        assert_eq!(outcome.duplicates, 0, "{outcome:?}");
        assert!(outcome.valid > 0, "{outcome:?}");
        assert!(
            outcome.exhausted,
            "a 15-chain space must be fully covered under a 2k budget"
        );
        assert!(outcome.evaluations < 2_000, "{outcome:?}");
        assert_eq!(
            outcome.evaluations,
            outcome.valid + outcome.invalid + outcome.duplicates
        );
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            SearchStrategy::Random,
            SearchStrategy::Sampled,
            SearchStrategy::Exhaustive,
            SearchStrategy::Hybrid,
            SearchStrategy::Anneal,
        ] {
            assert_eq!(s.name().parse(), Ok(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(
            "genetic".parse::<SearchStrategy>(),
            Err(ConfigError::UnknownStrategy("genetic".to_owned()))
        );
    }

    #[test]
    fn objective_names_round_trip() {
        for o in [Objective::Edp, Objective::Energy, Objective::Delay] {
            assert_eq!(o.name().parse(), Ok(o));
            assert_eq!(o.to_string(), o.name());
        }
        assert_eq!(
            "speed".parse::<Objective>(),
            Err(ConfigError::UnknownObjective("speed".to_owned()))
        );
    }

    #[test]
    fn outcome_serde_round_trips_with_a_stable_schema() {
        let outcome = search(
            &toy_space(MapspaceKind::RubyS, 16, 113),
            &SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
        );
        let value = outcome.to_value();
        assert_eq!(
            value.get("schema"),
            Some(&serde::Value::U64(SCHEMA_VERSION))
        );
        let text = serde_json::to_string(&value).expect("serializes");
        let parsed: serde::Value = serde_json::from_str(&text).expect("parses");
        let back = <SearchOutcome as serde::Deserialize>::from_value(&parsed).expect("decodes");
        assert_eq!(back.evaluations, outcome.evaluations);
        assert_eq!(back.valid, outcome.valid);
        assert_eq!(back.invalid, outcome.invalid);
        assert_eq!(back.duplicates, outcome.duplicates);
        assert_eq!(back.exhausted, outcome.exhausted);
        assert_eq!(back.trace, outcome.trace);
        let (a, b) = (outcome.best.expect("best"), back.best.expect("best"));
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.report.cycles(), b.report.cycles());
        // Wrong schema versions must be rejected, not misread.
        let mut fields = match value {
            serde::Value::Obj(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        fields[0].1 = serde::Value::U64(999);
        assert!(
            <SearchOutcome as serde::Deserialize>::from_value(&serde::Value::Obj(fields)).is_err()
        );
    }
}
