//! Checkpoint/resume for long-running searches.
//!
//! A [`SearchCheckpoint`] freezes everything a strategy needs to
//! continue a run *bit-identically*: the best mapping found so far,
//! every deterministic counter, the memo-cache contents (slot-exact,
//! so probe/insert outcomes replay the same), the quarantine list, and
//! a per-strategy [`Cursor`] (RNG states, sweep position, annealer
//! temperature). Checkpoints are only taken at *deterministic
//! barriers* — points the uninterrupted run also passes through — so a
//! resumed single-threaded run reaches exactly the outcome the
//! uninterrupted run would have.
//!
//! On disk a checkpoint is two JSON lines: a header
//! `{"schema", "crc", "bytes"}` followed by the payload. The CRC-32
//! and byte count let [`SearchCheckpoint::load`] reject torn or
//! corrupted files with a typed [`CheckpointError`] instead of
//! resuming from garbage; writes go through
//! [`ruby_telemetry::write_atomic`] (tmp + fsync + rename) so a crash
//! mid-write leaves the previous checkpoint intact. A [`fingerprint`]
//! of the search configuration and mapspace is stamped into every file
//! and verified on resume, so a checkpoint cannot silently continue a
//! *different* search.

use std::fmt;
use std::path::PathBuf;
use std::sync::PoisonError;

use ruby_mapping::Mapping;
use ruby_mapspace::Mapspace;
use ruby_workload::Dim;
use serde::{impl_serde_struct, impl_serde_unit_enum, Deserialize, Serialize, Value};

use crate::sync::Ordering;
use crate::{BestMapping, SearchConfig, SearchOutcome, Shared};

/// Version of the on-disk checkpoint format (independent of the
/// telemetry [`SCHEMA_VERSION`](ruby_telemetry::SCHEMA_VERSION), which
/// tracks the *streaming* records). Bump on any field change.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// Why a checkpoint could not be written, read, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file exists but its contents are not a valid checkpoint
    /// (truncated, CRC mismatch, unparseable, or a cursor that does not
    /// belong to the configured strategy).
    Corrupt(String),
    /// The file uses a different checkpoint format version.
    SchemaMismatch {
        /// Version found in the file header.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// The checkpoint was taken by a search with a different
    /// configuration or mapspace; resuming would not be equivalent.
    ConfigMismatch,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(err) => write!(f, "checkpoint i/o error: {err}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::SchemaMismatch { found, expected } => write!(
                f,
                "checkpoint schema mismatch: file has v{found}, this build reads v{expected}"
            ),
            CheckpointError::ConfigMismatch => write!(
                f,
                "checkpoint was taken under a different search configuration or mapspace"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(err: std::io::Error) -> Self {
        CheckpointError::Io(err)
    }
}

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Hand-rolled bitwise form: the payload is written once per stride,
/// so table-driven speed buys nothing worth the 1 KiB static.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The deterministic counters of a run, frozen at a barrier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Total candidate evaluations (valid + invalid + duplicates).
    pub evaluations: u64,
    /// Candidates the cost model accepted.
    pub valid: u64,
    /// Candidates the cost model rejected.
    pub invalid: u64,
    /// Candidates skipped via the memo cache.
    pub duplicates: u64,
    /// Whole regions cut by the lower-bound prune.
    pub pruned_subtrees: u64,
    /// Individual mappings cut by pruning.
    pub pruned_mappings: u64,
    /// Strict improvements recorded into the trace.
    pub improvements: u64,
    /// Consecutive non-improving evaluations (termination patience).
    pub fails: u64,
    /// Times a panicking worker body was restarted.
    pub worker_restarts: u64,
    /// Candidates quarantined after a panic during their evaluation.
    pub quarantined: u64,
}

impl_serde_struct!(CheckpointCounters {
    evaluations,
    valid,
    invalid,
    duplicates,
    pruned_subtrees,
    pruned_mappings,
    improvements,
    fails,
    worker_restarts,
    quarantined,
});

/// Which role the random sampler was playing when checkpointed — the
/// resume path must re-enter the same role (a plain `Random` run, the
/// warmup leg of `Hybrid`, or the fallback after enumeration failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomPhase {
    /// The `Random` strategy proper.
    Plain,
    /// The random warmup leg of `Hybrid`.
    Warmup,
    /// Random fallback after `EnumTables::build` failed (the failure is
    /// deterministic, so resume skips straight back to the fallback).
    Fallback,
}

impl_serde_unit_enum!(RandomPhase {
    Plain,
    Warmup,
    Fallback
});

/// Resume state for the random sampler: one RNG state per worker.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCursor {
    /// Role the sampler was playing (see [`RandomPhase`]).
    pub phase: RandomPhase,
    /// Evaluation budget this leg was launched with. Stored because the
    /// hybrid remainder is computed from live counters and cannot be
    /// re-derived after a restart.
    pub budget: Option<u64>,
    /// xoshiro256++ state per worker, captured after the last completed
    /// iteration.
    pub rngs: Vec<[u64; 4]>,
}

impl_serde_struct!(RandomCursor {
    phase,
    budget,
    rngs,
});

/// Resume state for the permuted walk: one `(position, end)` pair per
/// worker. The Feistel permutation is a pure function of the config seed
/// and the (deterministically rebuilt) table size, so the position alone
/// regenerates the remaining visit sequence bit-identically — batch
/// boundaries leave no state behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutedCursor {
    /// Role the walk was playing (see [`RandomPhase`]; the walk never
    /// runs the `Fallback` role — fallback means the tables failed, and
    /// without tables there is no index space to permute).
    pub phase: RandomPhase,
    /// Evaluation budget this leg was launched with (see
    /// [`RandomCursor::budget`]).
    pub budget: Option<u64>,
    /// Next global leaf position and range end per worker, captured at a
    /// batch barrier.
    pub positions: Vec<(u64, u64)>,
}

impl_serde_struct!(PermutedCursor {
    phase,
    budget,
    positions,
});

/// Resume state for the exhaustive sweep, captured at a batch barrier
/// (after the probe phase; region order already probe-sorted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveCursor {
    /// Evaluation budget this sweep was launched with (see
    /// [`RandomCursor::budget`]).
    pub budget: Option<u64>,
    /// Floor-then-probe-sorted region visit order.
    pub order: Vec<u64>,
    /// Which regions already had their first leaf probed.
    pub probe_done: Vec<bool>,
    /// Next index into `order` to pull a region from.
    pub oi: u64,
    /// Enumeration ordinal reached (candidates charged to the budget).
    pub ordinal: u64,
    /// Leaves decoded so far (for the `MAX_REGION_SCAN` cap).
    pub scanned: u64,
    /// Captured during the probe phase (every probe step is a barrier:
    /// the sweep is single-threaded there). When set, `pi`/`probe_cost`
    /// are meaningful and `oi`/`scanned` are still zero.
    pub probing: bool,
    /// Next index into `order` to probe (probe phase only).
    pub pi: u64,
    /// Measured probe cost per region as `f64` bits (`+inf` = not yet
    /// probed or invalid); bits, because JSON has no infinity literal.
    pub probe_cost: Vec<u64>,
}

impl_serde_struct!(ExhaustiveCursor {
    budget,
    order,
    probe_done,
    oi,
    ordinal,
    scanned,
    probing,
    pi,
    probe_cost,
});

/// Resume state for the annealer, captured every checkpoint stride at
/// the top of a step.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealCursor {
    /// RNG state after the last completed step.
    pub rng: [u64; 4],
    /// Steps completed (resume runs `step..config.steps`).
    pub step: u64,
    /// Temperature at the barrier.
    pub temperature: f64,
    /// Cost of the current (accepted) mapping.
    pub current_cost: f64,
    /// The current (accepted) mapping itself.
    pub current: Mapping,
}

impl_serde_struct!(AnnealCursor {
    rng,
    step,
    temperature,
    current_cost,
    current,
});

/// Per-strategy resume position. `Done` marks a finished run, so
/// resuming a completed search short-circuits to its recorded outcome
/// instead of recomputing.
#[derive(Debug, Clone, PartialEq)]
pub enum Cursor {
    /// Random sampling (any [`RandomPhase`]) on the rejection-sampler
    /// fallback path.
    Random(RandomCursor),
    /// The duplicate-free permuted walk over the enumeration index
    /// space (the default random path when the space tabulates).
    Permuted(PermutedCursor),
    /// The exhaustive sweep.
    Exhaustive(ExhaustiveCursor),
    /// Simulated annealing.
    Anneal(AnnealCursor),
    /// The run finished; nothing to resume.
    Done {
        /// Whether the finished sweep covered the whole space.
        exhausted: bool,
    },
}

impl Serialize for Cursor {
    fn to_value(&self) -> Value {
        let (kind, state) = match self {
            Cursor::Random(c) => ("random", c.to_value()),
            Cursor::Permuted(c) => ("permuted", c.to_value()),
            Cursor::Exhaustive(c) => ("exhaustive", c.to_value()),
            Cursor::Anneal(c) => ("anneal", c.to_value()),
            Cursor::Done { exhausted } => ("done", exhausted.to_value()),
        };
        Value::Obj(vec![
            ("kind".to_owned(), Value::Str(kind.to_owned())),
            ("state".to_owned(), state),
        ])
    }
}

impl Deserialize for Cursor {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let kind = value.field("kind")?;
        let kind = kind.as_str()?;
        let state = value.field("state")?;
        match kind {
            "random" => Ok(Cursor::Random(RandomCursor::from_value(state)?)),
            "permuted" => Ok(Cursor::Permuted(PermutedCursor::from_value(state)?)),
            "exhaustive" => Ok(Cursor::Exhaustive(ExhaustiveCursor::from_value(state)?)),
            "anneal" => Ok(Cursor::Anneal(AnnealCursor::from_value(state)?)),
            "done" => Ok(Cursor::Done {
                exhausted: bool::from_value(state)?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown cursor kind `{other}`"
            ))),
        }
    }
}

/// Everything needed to continue a run bit-identically (see the module
/// docs for the barrier discipline that makes that true).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// [`fingerprint`] of the config + mapspace this was taken under.
    pub fingerprint: u64,
    /// Strategy name (`random` / `exhaustive` / `hybrid` / `anneal`).
    pub strategy: String,
    /// Deterministic counters at the barrier.
    pub counters: CheckpointCounters,
    /// Best mapping found so far (cost, mapping, cost report).
    pub best: Option<BestMapping>,
    /// Ordinal at which the best was found (termination patience).
    pub best_ordinal: u64,
    /// Best-so-far trace `(evaluation, cost)`.
    pub trace: Vec<(u64, f64)>,
    /// Published memo entries as `(slot, key, cost bits)`, slot-exact.
    pub memo: Vec<(u64, u64, u64)>,
    /// Canonical keys of quarantined (panicking) candidates.
    pub poison: Vec<u64>,
    /// Strategy resume position.
    pub cursor: Cursor,
}

impl_serde_struct!(SearchCheckpoint {
    fingerprint,
    strategy,
    counters,
    best,
    best_ordinal,
    trace,
    memo,
    poison,
    cursor,
});

impl SearchCheckpoint {
    /// Freezes the shared search state at a barrier. The fingerprint is
    /// left zero; [`Checkpointer::save`] stamps it.
    pub(crate) fn capture(shared: &Shared, config: &SearchConfig, cursor: Cursor) -> Self {
        let (best, trace, best_ordinal) = {
            let record = shared.record.lock().unwrap_or_else(PoisonError::into_inner);
            (
                record.best.clone(),
                record.trace.clone(),
                record.best_ordinal,
            )
        };
        // ordering: Relaxed — captured at a deterministic barrier; any
        // worker threads were joined before this point.
        let counters = CheckpointCounters {
            evaluations: shared.evals.load(Ordering::Relaxed),
            valid: shared.valid.load(Ordering::Relaxed),
            invalid: shared.invalid.load(Ordering::Relaxed),
            // ordering: Relaxed — same joined-workers barrier as above.
            duplicates: shared.duplicates.load(Ordering::Relaxed),
            pruned_subtrees: shared.pruned_subtrees.load(Ordering::Relaxed),
            pruned_mappings: shared.pruned_mappings.load(Ordering::Relaxed),
            improvements: shared.improvements.load(Ordering::Relaxed),
            // ordering: Relaxed — same joined-workers barrier as above.
            fails: shared.fails.load(Ordering::Relaxed),
            worker_restarts: shared.worker_restarts.load(Ordering::Relaxed),
            quarantined: shared.quarantined.load(Ordering::Relaxed),
        };
        SearchCheckpoint {
            fingerprint: 0,
            strategy: config.strategy.name().to_owned(),
            counters,
            best,
            best_ordinal,
            trace,
            memo: shared
                .memo
                .as_ref()
                .map(crate::MemoCache::dump)
                .unwrap_or_default(),
            poison: shared
                .poison
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
            cursor,
        }
    }

    /// Serializes and writes the checkpoint atomically (tmp + fsync +
    /// rename) as header line + payload line.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(&self.to_value())
            .map_err(|err| CheckpointError::Corrupt(format!("unserializable: {err}")))?;
        let header = format!(
            "{{\"schema\":{},\"crc\":{},\"bytes\":{}}}",
            CHECKPOINT_SCHEMA,
            crc32(payload.as_bytes()),
            payload.len()
        );
        let file = format!("{header}\n{payload}\n");
        ruby_telemetry::write_atomic(path, file.as_bytes())?;
        Ok(())
    }

    /// Reads and validates a checkpoint: schema first (so old formats
    /// report a version mismatch, not garbage), then byte count and
    /// CRC-32 (torn or corrupted files), then the payload itself.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let raw = std::fs::read_to_string(path)?;
        let (header, payload) = raw
            .split_once('\n')
            .ok_or_else(|| CheckpointError::Corrupt("missing header line".to_owned()))?;
        let payload = payload.strip_suffix('\n').unwrap_or(payload);
        let header: Value = serde_json::from_str(header)
            .map_err(|err| CheckpointError::Corrupt(format!("unreadable header: {err}")))?;
        let schema = header
            .get("schema")
            .and_then(|v| v.as_u64().ok())
            .ok_or_else(|| CheckpointError::Corrupt("header lacks `schema`".to_owned()))?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::SchemaMismatch {
                found: schema,
                expected: CHECKPOINT_SCHEMA,
            });
        }
        let bytes = header
            .get("bytes")
            .and_then(|v| v.as_u64().ok())
            .ok_or_else(|| CheckpointError::Corrupt("header lacks `bytes`".to_owned()))?;
        if bytes != payload.len() as u64 {
            return Err(CheckpointError::Corrupt(format!(
                "truncated payload: header says {bytes} bytes, file has {}",
                payload.len()
            )));
        }
        let crc = header
            .get("crc")
            .and_then(|v| v.as_u64().ok())
            .ok_or_else(|| CheckpointError::Corrupt("header lacks `crc`".to_owned()))?;
        if crc != u64::from(crc32(payload.as_bytes())) {
            return Err(CheckpointError::Corrupt("payload CRC mismatch".to_owned()));
        }
        let value: Value = serde_json::from_str(payload)
            .map_err(|err| CheckpointError::Corrupt(format!("unreadable payload: {err}")))?;
        SearchCheckpoint::from_value(&value)
            .map_err(|err| CheckpointError::Corrupt(format!("invalid payload: {err}")))
    }
}

/// Restores the shared search state from a checkpoint. Runs
/// single-threaded, before any worker starts.
#[rustfmt::skip] // one store per line keeps the `// ordering:` comments adjacent
pub(crate) fn restore_shared(shared: &Shared, cp: &SearchCheckpoint) {
    // ordering: Relaxed — single-threaded restore; workers start after.
    shared.evals.store(cp.counters.evaluations, Ordering::Relaxed);
    shared.valid.store(cp.counters.valid, Ordering::Relaxed);
    shared.invalid.store(cp.counters.invalid, Ordering::Relaxed);
    shared.duplicates.store(cp.counters.duplicates, Ordering::Relaxed);
    // ordering: Relaxed — single-threaded restore (see above).
    shared.pruned_subtrees.store(cp.counters.pruned_subtrees, Ordering::Relaxed);
    shared.pruned_mappings.store(cp.counters.pruned_mappings, Ordering::Relaxed);
    shared.improvements.store(cp.counters.improvements, Ordering::Relaxed);
    shared.fails.store(cp.counters.fails, Ordering::Relaxed);
    // ordering: Relaxed — single-threaded restore (see above).
    shared.worker_restarts.store(cp.counters.worker_restarts, Ordering::Relaxed);
    shared.quarantined.store(cp.counters.quarantined, Ordering::Relaxed);
    let best_bits = cp.best.as_ref().map_or(f64::INFINITY, |b| b.cost).to_bits();
    // ordering: Relaxed — single-threaded restore (see above).
    shared.best_bits.store(best_bits, Ordering::Relaxed);
    if let Some(memo) = &shared.memo {
        memo.restore(&cp.memo);
    }
    *shared.poison.lock().unwrap_or_else(PoisonError::into_inner) = cp.poison.clone();
    let mut record = shared.record.lock().unwrap_or_else(PoisonError::into_inner);
    record.best = cp.best.clone();
    record.trace = cp.trace.clone();
    record.best_ordinal = cp.best_ordinal;
}

/// The outcome a `Done` checkpoint recorded, replayed without
/// recomputing anything.
pub(crate) fn outcome_of_checkpoint(cp: &SearchCheckpoint) -> SearchOutcome {
    SearchOutcome {
        best: cp.best.clone(),
        evaluations: cp.counters.evaluations,
        valid: cp.counters.valid,
        invalid: cp.counters.invalid,
        duplicates: cp.counters.duplicates,
        pruned_subtrees: cp.counters.pruned_subtrees,
        pruned_mappings: cp.counters.pruned_mappings,
        exhausted: matches!(cp.cursor, Cursor::Done { exhausted: true }),
        trace: cp.trace.clone(),
        stopped_early: false,
        stop_reason: None,
        worker_restarts: cp.counters.worker_restarts,
        quarantined: cp.counters.quarantined,
    }
}

/// The terminal checkpoint of a finished run: a `Done` cursor carrying
/// the outcome, so `--resume` on a completed search replays it.
pub(crate) fn checkpoint_of_outcome(outcome: &SearchOutcome, strategy: &str) -> SearchCheckpoint {
    SearchCheckpoint {
        fingerprint: 0,
        strategy: strategy.to_owned(),
        counters: CheckpointCounters {
            evaluations: outcome.evaluations,
            valid: outcome.valid,
            invalid: outcome.invalid,
            duplicates: outcome.duplicates,
            pruned_subtrees: outcome.pruned_subtrees,
            pruned_mappings: outcome.pruned_mappings,
            improvements: outcome.trace.len() as u64,
            fails: 0,
            worker_restarts: outcome.worker_restarts,
            quarantined: outcome.quarantined,
        },
        best: outcome.best.clone(),
        best_ordinal: 0,
        trace: outcome.trace.clone(),
        memo: Vec::new(),
        poison: Vec::new(),
        cursor: Cursor::Done {
            exhausted: outcome.exhausted,
        },
    }
}

/// Order-sensitive 64-bit fold used by [`fingerprint`]: xor-multiply
/// then a splitmix64 round, so permuted inputs land on different
/// digests.
struct Fold {
    state: u64,
}

impl Fold {
    fn push(&mut self, v: u64) {
        self.state ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        rand::splitmix64(&mut self.state);
    }

    fn push_str(&mut self, s: &str) {
        self.push(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut le = [0u8; 8];
            le[..chunk.len()].copy_from_slice(chunk);
            self.push(u64::from_le_bytes(le));
        }
    }

    fn push_opt(&mut self, v: Option<u64>) {
        match v {
            None => self.push(0),
            Some(v) => {
                self.push(1);
                self.push(v);
            }
        }
    }
}

/// Digest of everything that shapes a run's deterministic trajectory:
/// the strategy and its knobs, plus the mapspace identity (levels,
/// problem bounds, constraint kind). Resume refuses a checkpoint whose
/// fingerprint differs ([`CheckpointError::ConfigMismatch`]).
///
/// Best-effort by design: `ModelOptions` is not folded in (it has no
/// stable serialization), so changing model constants between runs is
/// the caller's responsibility.
pub fn fingerprint(space: &Mapspace, config: &SearchConfig) -> u64 {
    let mut fold = Fold {
        state: 0x5275_6279_2043_5054,
    };
    fold.push_str(config.strategy.name());
    fold.push(config.seed);
    fold.push_opt(config.max_evaluations);
    fold.push_opt(config.termination);
    fold.push(config.threads as u64);
    fold.push_str(config.objective.name());
    fold.push(u64::from(config.prune));
    fold.push(u64::from(config.dedup));
    fold.push(u64::from(config.memo_bits));
    fold.push(config.max_trace as u64);
    fold.push(space.arch().num_levels() as u64);
    let bounds = space.shape().bounds();
    for dim in Dim::ALL {
        fold.push(bounds[dim]);
    }
    fold.push_str(&format!("{:?}", space.kind()));
    fold.state
}

/// Owns the checkpoint file for one run: stamps the fingerprint, writes
/// through [`SearchCheckpoint::save`], and *degrades* on write failure
/// (warn once, keep searching) — a broken disk should cost the resume
/// capability, not the run.
pub(crate) struct Checkpointer {
    path: PathBuf,
    every: u64,
    fingerprint: u64,
    // ordering: plain std atomic — only gates the one-time warning,
    // never publishes data (crate::sync is for the model-checked path).
    warned: std::sync::atomic::AtomicBool,
}

impl Checkpointer {
    pub(crate) fn new(path: PathBuf, every: u64, fingerprint: u64) -> Self {
        Checkpointer {
            path,
            every: every.max(1),
            fingerprint,
            warned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Evaluation stride between periodic checkpoints.
    pub(crate) fn stride(&self) -> u64 {
        self.every
    }

    /// Stamps the fingerprint and writes the checkpoint, degrading on
    /// failure.
    pub(crate) fn save(&self, mut cp: SearchCheckpoint) {
        cp.fingerprint = self.fingerprint;
        if let Err(err) = cp.save(&self.path) {
            // ordering: Relaxed — standalone warn-once flag.
            if !self.warned.swap(true, std::sync::atomic::Ordering::Relaxed) {
                eprintln!(
                    "warning: checkpoint write to {} failed ({err}); continuing without checkpoints",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done_checkpoint() -> SearchCheckpoint {
        SearchCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            strategy: "random".to_owned(),
            counters: CheckpointCounters {
                evaluations: 100,
                valid: 60,
                invalid: 30,
                duplicates: 10,
                pruned_subtrees: 2,
                pruned_mappings: 40,
                improvements: 5,
                fails: 7,
                worker_restarts: 1,
                quarantined: 1,
            },
            best: None,
            best_ordinal: 42,
            trace: vec![(1, 9.5), (17, 3.25)],
            memo: vec![(0, 123, 456), (7, 89, 1011)],
            poison: vec![0xBAD],
            cursor: Cursor::Done { exhausted: true },
        }
    }

    #[test]
    fn crc32_matches_the_known_ieee_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_save_load_round_trips() {
        let dir = std::env::temp_dir().join("ruby-checkpoint-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = done_checkpoint();
        cp.save(&path).unwrap();
        let loaded = SearchCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cursor_kinds_round_trip() {
        let cursors = [
            Cursor::Random(RandomCursor {
                phase: RandomPhase::Warmup,
                budget: Some(1000),
                rngs: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            }),
            Cursor::Permuted(PermutedCursor {
                phase: RandomPhase::Plain,
                budget: Some(4096),
                positions: vec![(17, 512), (600, 1024)],
            }),
            Cursor::Exhaustive(ExhaustiveCursor {
                budget: None,
                order: vec![3, 1, 2],
                probe_done: vec![true, false, true],
                oi: 1,
                ordinal: 99,
                scanned: 1234,
                probing: true,
                pi: 2,
                probe_cost: vec![f64::INFINITY.to_bits(), 4.5f64.to_bits(), 0],
            }),
            Cursor::Done { exhausted: false },
        ];
        for cursor in cursors {
            let value = cursor.to_value();
            let back = Cursor::from_value(&value).unwrap();
            assert_eq!(back, cursor);
        }
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let dir = std::env::temp_dir().join("ruby-checkpoint-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        done_checkpoint().save(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a payload byte without touching the header.
        let flip = raw.len() - 2;
        raw[flip] ^= 0x01;
        std::fs::write(&path, raw).unwrap();
        match SearchCheckpoint::load(&path) {
            Err(CheckpointError::Corrupt(why)) => {
                assert!(why.contains("CRC"), "unexpected reason: {why}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let dir = std::env::temp_dir().join("ruby-checkpoint-truncated");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        done_checkpoint().save(&path).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        match SearchCheckpoint::load(&path) {
            Err(CheckpointError::Corrupt(why)) => {
                assert!(why.contains("truncated"), "unexpected reason: {why}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_schema_is_rejected_with_both_versions() {
        let dir = std::env::temp_dir().join("ruby-checkpoint-schema");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        std::fs::write(&path, "{\"schema\":999,\"crc\":0,\"bytes\":2}\n{}\n").unwrap();
        match SearchCheckpoint::load(&path) {
            Err(CheckpointError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, CHECKPOINT_SCHEMA);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reports_io_not_found() {
        let path = std::env::temp_dir().join("ruby-checkpoint-missing/nope.json");
        match SearchCheckpoint::load(&path) {
            Err(CheckpointError::Io(err)) => {
                assert_eq!(err.kind(), std::io::ErrorKind::NotFound)
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn fold_is_order_sensitive() {
        let mut a = Fold { state: 0 };
        a.push(1);
        a.push(2);
        let mut b = Fold { state: 0 };
        b.push(2);
        b.push(1);
        assert_ne!(a.state, b.state);
    }
}
