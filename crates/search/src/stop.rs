//! Cooperative cancellation for long-running searches.
//!
//! A [`StopToken`] is a cloneable handle shared between a search run
//! and whoever may need to interrupt it (a signal watcher, a deadline
//! monitor, an embedding application). Strategies poll it at their
//! loop boundaries and *drain*: finish the unit of work in flight,
//! flush the pending checkpoint, and return a valid `SearchOutcome`
//! marked `stopped_early` instead of aborting.
//!
//! Two levels exist. [`request_stop`](StopToken::request_stop) is the
//! graceful drain described above (first Ctrl-C). [`hard_stop`]
//! (StopToken::hard_stop) records that even draining should be
//! abandoned; the CLI's second Ctrl-C exits the process directly, so
//! this level mostly serves embedders that cannot `_exit`.
//!
//! The token also carries an optional evaluation trip-wire
//! ([`trip_after_evaluations`](StopToken::trip_after_evaluations)):
//! tests and the resilience harness use it to interrupt a run at a
//! *deterministic* point (e.g. "at 50% of the budget") so that
//! kill-and-resume equivalence can be asserted bit-for-bit.

// ordering: this module uses plain std atomics (not `crate::sync`) on
// purpose: the token is shared with non-search threads (signal
// watchers) that outlive any interleaving-test harness, and every cell
// is a standalone flag with no payload published through it.
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

const STATE_RUN: u8 = 0;
const STATE_DRAIN: u8 = 1;
const STATE_HARD: u8 = 2;

#[derive(Debug)]
struct Inner {
    // ordering: Relaxed — standalone stop flag; polled, never used to
    // publish other memory.
    state: AtomicU8,
    // ordering: Relaxed — standalone trip-wire threshold.
    trip_at_evals: AtomicU64,
}

/// A cloneable cancellation handle polled by every search strategy.
///
/// Clones share state: tripping any clone stops the run.
#[derive(Debug, Clone)]
pub struct StopToken {
    inner: Arc<Inner>,
}

impl Default for StopToken {
    fn default() -> Self {
        StopToken::new()
    }
}

impl StopToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        StopToken {
            inner: Arc::new(Inner {
                // ordering: Relaxed — standalone flag (see above).
                state: AtomicU8::new(STATE_RUN),
                // ordering: Relaxed — standalone threshold (see above).
                trip_at_evals: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Requests a graceful drain: strategies finish the unit of work in
    /// flight, checkpoint, and return a `stopped_early` outcome.
    pub fn request_stop(&self) {
        // ordering: Relaxed — flag only; the drain path joins worker
        // threads, which provides any needed synchronization.
        let _ = self.inner.state.compare_exchange(
            STATE_RUN,
            STATE_DRAIN,
            // ordering: Relaxed — flag only (see above).
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Escalates past draining. Implies [`request_stop`](Self::request_stop).
    pub fn hard_stop(&self) {
        // ordering: Relaxed — flag only (see request_stop).
        self.inner.state.store(STATE_HARD, Ordering::Relaxed);
    }

    /// Whether a stop (graceful or hard) has been requested.
    #[inline]
    pub fn stop_requested(&self) -> bool {
        // ordering: Relaxed — flag poll (see module docs).
        self.inner.state.load(Ordering::Relaxed) != STATE_RUN
    }

    /// Whether the hard level has been reached.
    pub fn hard_requested(&self) -> bool {
        // ordering: Relaxed — flag poll (see module docs).
        self.inner.state.load(Ordering::Relaxed) == STATE_HARD
    }

    /// Arms a deterministic trip-wire: once the run's evaluation
    /// counter reaches `evals`, polling via
    /// [`should_stop_at`](Self::should_stop_at) reports a stop. Used by
    /// resilience tests to interrupt at an exact, reproducible point.
    pub fn trip_after_evaluations(&self, evals: u64) {
        // ordering: Relaxed — standalone threshold (see module docs).
        self.inner.trip_at_evals.store(evals, Ordering::Relaxed);
    }

    /// [`stop_requested`](Self::stop_requested), plus the evaluation
    /// trip-wire: stops once `evaluations` reaches the armed threshold.
    #[inline]
    pub fn should_stop_at(&self, evaluations: u64) -> bool {
        if self.stop_requested() {
            return true;
        }
        // ordering: Relaxed — standalone threshold (see module docs).
        let trip = self.inner.trip_at_evals.load(Ordering::Relaxed);
        evaluations >= trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_untripped() {
        let token = StopToken::new();
        assert!(!token.stop_requested());
        assert!(!token.hard_requested());
        assert!(!token.should_stop_at(u64::MAX - 1));
    }

    #[test]
    fn clones_share_the_stop_state() {
        let token = StopToken::new();
        let clone = token.clone();
        token.request_stop();
        assert!(clone.stop_requested());
        assert!(!clone.hard_requested());
        clone.hard_stop();
        assert!(token.hard_requested());
    }

    #[test]
    fn trip_wire_fires_at_the_threshold() {
        let token = StopToken::new();
        token.trip_after_evaluations(100);
        assert!(!token.should_stop_at(99));
        assert!(token.should_stop_at(100));
        assert!(token.should_stop_at(101));
        assert!(!token.stop_requested(), "trip-wire is poll-only");
    }
}
