//! The unified search entry point: [`Engine`], the validating
//! [`SearchConfigBuilder`], and progress streaming.
//!
//! Every strategy — random sampling, pruned enumeration, hybrid, and
//! simulated annealing — runs through one facade:
//!
//! ```
//! use ruby_arch::presets;
//! use ruby_mapspace::{Mapspace, MapspaceKind};
//! use ruby_search::{Engine, SearchConfig};
//! use ruby_workload::ProblemShape;
//!
//! let space = Mapspace::new(
//!     presets::toy_linear(16, 1024),
//!     ProblemShape::rank1("d", 113),
//!     MapspaceKind::RubyS,
//! );
//! let config = SearchConfig::builder().seed(7).build().expect("valid");
//! let outcome = Engine::new(&space).with_config(config).run();
//! assert!(outcome.best.is_some());
//! ```
//!
//! Attaching a [`ProgressSink`] (see [`Engine::with_progress`]) spawns
//! a monitor thread that polls the workers' [`SnapshotSlot`] and
//! forwards fresh [`SearchSnapshot`]s; workers publish through the slot
//! about once per thousand candidates, so streaming costs the hot path
//! one masked branch per candidate plus a lossy CAS per stride.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use ruby_mapspace::Mapspace;
use ruby_telemetry::snapshot::{SearchSnapshot, SnapshotSlot};
use ruby_telemetry::ProgressSink;

use crate::anneal::{self, AnnealConfig};
use crate::checkpoint::{
    self, CheckpointError, Checkpointer, Cursor, RandomPhase, SearchCheckpoint,
};
use crate::stop::StopToken;
use crate::sync::{AtomicU64, Ordering};
use crate::{
    exhaustive, permuted, run_random, SearchConfig, SearchOutcome, SearchStrategy, Shared,
};

/// Workers publish a progress snapshot every this many reservations
/// (power of two: the stride check is one mask on the hot path).
pub(crate) const PROGRESS_STRIDE: u64 = 1024;

/// How often the monitor thread polls the snapshot slot by default.
const DEFAULT_PROGRESS_INTERVAL: Duration = Duration::from_millis(100);

/// A configuration rejected by [`SearchConfigBuilder::build`] (also the
/// `FromStr` error for [`crate::Objective`] / [`SearchStrategy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads == 0`.
    ZeroThreads,
    /// `max_evaluations` or `termination` set to zero.
    ZeroBudget,
    /// A negative budget reached a builder setter (field name, value).
    NegativeBudget(&'static str, i64),
    /// Neither `max_evaluations` nor `termination` set for a strategy
    /// with a random phase.
    Unbounded,
    /// `Hybrid` with pruning disabled: the warm-up exists to seed the
    /// enumeration's pruning bound, so the combination is always a
    /// misconfiguration.
    UnprunedHybrid,
    /// An unrecognized objective name.
    UnknownObjective(String),
    /// An unrecognized strategy name.
    UnknownStrategy(String),
    /// `max_seconds` was not a positive, finite number (rendered as a
    /// string so the error type stays `Eq`).
    InvalidMaxSeconds(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroThreads => f.write_str("need at least one search thread"),
            ConfigError::ZeroBudget => {
                f.write_str("zero budget: max_evaluations and termination must be positive")
            }
            ConfigError::NegativeBudget(field, value) => {
                write!(f, "negative {field}: {value}")
            }
            ConfigError::Unbounded => {
                f.write_str("unbounded search: set max_evaluations or termination")
            }
            ConfigError::UnprunedHybrid => f.write_str(
                "hybrid strategy requires pruning: its warm-up exists to seed the bound",
            ),
            ConfigError::UnknownObjective(name) => {
                write!(
                    f,
                    "unknown objective `{name}` (expected edp | energy | delay)"
                )
            }
            ConfigError::UnknownStrategy(name) => write!(
                f,
                "unknown strategy `{name}` (expected random | sampled | exhaustive | hybrid | anneal)"
            ),
            ConfigError::InvalidMaxSeconds(value) => write!(
                f,
                "invalid max_seconds `{value}`: must be a positive, finite number of seconds"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a validated [`SearchConfig`].
///
/// Setters mirror the config fields; budget setters take `i64` so a
/// negative value is representable — and rejected — rather than
/// silently wrapped by the caller. The first error sticks and is
/// returned by [`build`](Self::build).
#[derive(Debug, Clone, Default)]
pub struct SearchConfigBuilder {
    config: SearchConfig,
    error: Option<ConfigError>,
}

impl SearchConfigBuilder {
    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Caps total sampled mappings; negative values are rejected at
    /// [`build`](Self::build).
    pub fn max_evaluations(mut self, max: i64) -> Self {
        if max < 0 {
            self.error
                .get_or_insert(ConfigError::NegativeBudget("max_evaluations", max));
        } else {
            self.config.max_evaluations = Some(max as u64);
        }
        self
    }

    /// Removes the evaluation cap (termination must then be set for
    /// strategies with a random phase).
    pub fn no_max_evaluations(mut self) -> Self {
        self.config.max_evaluations = None;
        self
    }

    /// Sets the no-improvement termination threshold; negative values
    /// are rejected at [`build`](Self::build).
    pub fn termination(mut self, limit: i64) -> Self {
        if limit < 0 {
            self.error
                .get_or_insert(ConfigError::NegativeBudget("termination", limit));
        } else {
            self.config.termination = Some(limit as u64);
        }
        self
    }

    /// Disables the no-improvement termination rule.
    pub fn no_termination(mut self) -> Self {
        self.config.termination = None;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Caps the improvement trace length.
    pub fn max_trace(mut self, max_trace: usize) -> Self {
        self.config.max_trace = max_trace;
        self
    }

    /// Sets the objective to minimize.
    pub fn objective(mut self, objective: crate::Objective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Sets the cost-model options.
    pub fn model(mut self, model: ruby_model::ModelOptions) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the search strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Enables or disables lower-bound pruning.
    pub fn prune(mut self, prune: bool) -> Self {
        self.config.prune = prune;
        self
    }

    /// Enables or disables memo-cache deduplication.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.config.dedup = dedup;
        self
    }

    /// Sets the memo cache size (`2^memo_bits` slots).
    pub fn memo_bits(mut self, memo_bits: u32) -> Self {
        self.config.memo_bits = memo_bits;
        self
    }

    /// Caps wall-clock time; non-positive or non-finite values are
    /// rejected at [`build`](Self::build).
    pub fn max_seconds(mut self, seconds: f64) -> Self {
        if seconds.is_finite() && seconds > 0.0 {
            self.config.max_seconds = Some(seconds);
        } else {
            self.error
                .get_or_insert(ConfigError::InvalidMaxSeconds(format!("{seconds}")));
        }
        self
    }

    /// Sets the panicking-worker restart budget (see
    /// [`SearchConfig::max_worker_restarts`]).
    pub fn max_worker_restarts(mut self, restarts: u64) -> Self {
        self.config.max_worker_restarts = restarts;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SearchConfig, ConfigError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        let config = self.config;
        if config.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if config.max_evaluations == Some(0) || config.termination == Some(0) {
            return Err(ConfigError::ZeroBudget);
        }
        if matches!(
            config.strategy,
            SearchStrategy::Random | SearchStrategy::Hybrid
        ) && config.max_evaluations.is_none()
            && config.termination.is_none()
        {
            return Err(ConfigError::Unbounded);
        }
        if config.strategy == SearchStrategy::Hybrid && !config.prune {
            return Err(ConfigError::UnprunedHybrid);
        }
        Ok(config)
    }
}

/// Progress-streaming state attached to [`Shared`] when the engine has
/// a sink: workers assemble snapshots from the shared counters and
/// publish them through the slot; the monitor thread reads the other
/// end.
pub(crate) struct ProgressState {
    slot: SnapshotSlot<{ SearchSnapshot::WORDS }>,
    start: Instant,
    seq: std::sync::atomic::AtomicU64,
    live: std::sync::atomic::AtomicU64,
    threads: u64,
}

impl ProgressState {
    fn new(threads: u64) -> Self {
        ProgressState {
            slot: SnapshotSlot::new(),
            start: Instant::now(),
            seq: std::sync::atomic::AtomicU64::new(0),
            live: std::sync::atomic::AtomicU64::new(0),
            threads,
        }
    }
}

impl std::fmt::Debug for ProgressState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressState")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Shared {
    /// Publishes a progress snapshot assembled from the live counters
    /// (no-op without an attached sink). Lossy under contention: a
    /// failed slot claim drops the snapshot, never blocks a worker.
    pub(crate) fn publish_progress(&self) {
        let Some(progress) = &self.progress else {
            return;
        };
        // ordering: Relaxed — the reads via this closure and the seq
        // bump below are statistics for a human-facing snapshot;
        // mid-flight skew between the counters is acceptable, and the
        // final (post-join) snapshot is exact.
        let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        let seq = progress
            .seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        // ordering: Relaxed — same statistics-read rationale as above.
        let live_threads = progress.live.load(std::sync::atomic::Ordering::Relaxed);
        let snapshot = SearchSnapshot {
            seq,
            elapsed_nanos: u64::try_from(progress.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            evaluations: read(&self.evals),
            valid: read(&self.valid),
            invalid: read(&self.invalid),
            duplicates: read(&self.duplicates),
            pruned_subtrees: read(&self.pruned_subtrees),
            pruned_mappings: read(&self.pruned_mappings),
            improvements: read(&self.improvements),
            best_cost_bits: read(&self.best_bits),
            live_threads,
            threads: progress.threads,
        };
        progress.slot.publish(&snapshot.encode());
    }

    /// Marks one worker as inside the search loop.
    pub(crate) fn progress_thread_started(&self) {
        if let Some(progress) = &self.progress {
            // ordering: Relaxed — liveness counter for display only.
            progress
                .live
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Marks one worker as done.
    pub(crate) fn progress_thread_stopped(&self) {
        if let Some(progress) = &self.progress {
            // ordering: Relaxed — liveness counter for display only.
            progress
                .live
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Sets the liveness counter directly (the enumeration coordinator
    /// tracks phase-level, not worker-level, liveness).
    pub(crate) fn progress_set_live(&self, live: u64) {
        if let Some(progress) = &self.progress {
            // ordering: Relaxed — liveness counter for display only.
            progress
                .live
                .store(live, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Checkpoint wiring for one engine run (see [`Engine::with_checkpoint`]).
struct CheckpointSpec {
    path: PathBuf,
    every: u64,
    resume: bool,
}

/// The unified search facade: one entry point for every strategy, with
/// optional progress streaming, cooperative cancellation and
/// checkpoint/resume. See the module docs for an example.
pub struct Engine<'s> {
    space: &'s Mapspace,
    config: SearchConfig,
    sink: Option<Box<dyn ProgressSink>>,
    interval: Duration,
    token: Option<StopToken>,
    checkpoint: Option<CheckpointSpec>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("progress", &self.sink.is_some())
            .finish()
    }
}

impl<'s> Engine<'s> {
    /// An engine over `space` with the default [`SearchConfig`].
    pub fn new(space: &'s Mapspace) -> Self {
        Engine {
            space,
            config: SearchConfig::default(),
            sink: None,
            interval: DEFAULT_PROGRESS_INTERVAL,
            token: None,
            checkpoint: None,
        }
    }

    /// Replaces the configuration (typically from
    /// [`SearchConfig::builder`]).
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Streams progress snapshots to `sink` while the search runs; the
    /// sink also receives the final summary (and, in
    /// `telemetry`-feature builds, the metrics dump). At least one
    /// snapshot is always emitted, however short the run.
    pub fn with_progress(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Adjusts how often the monitor forwards snapshots (default
    /// 100 ms).
    pub fn progress_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// The configuration this engine will run with.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Registers a cancellation token: tripping it (from a signal
    /// watcher, another thread, or a test trip-wire) makes every
    /// strategy drain — finish the unit of work in flight, write a
    /// final checkpoint if one is configured, and return a valid
    /// outcome marked `stopped_early`.
    pub fn with_stop_token(mut self, token: StopToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Writes checkpoints to `path`: periodically (about every `every`
    /// evaluations, at the strategy's deterministic barriers), at the
    /// drain point of an interrupted run, and once more — as a terminal
    /// `Done` record — when the run finishes. Call before
    /// [`resume`](Self::resume).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            path: path.into(),
            every: every.max(1),
            resume: false,
        });
        self
    }

    /// Resumes from the configured checkpoint file if it exists (a
    /// missing file starts fresh; corrupt or mismatched files fail
    /// [`try_run`](Self::try_run)). No-op without
    /// [`with_checkpoint`](Self::with_checkpoint).
    pub fn resume(mut self) -> Self {
        if let Some(spec) = &mut self.checkpoint {
            spec.resume = true;
        }
        self
    }

    /// Runs the search.
    ///
    /// # Panics
    ///
    /// Panics on a configuration [`SearchConfig::builder`] would have
    /// rejected as [`ConfigError::ZeroThreads`] or
    /// [`ConfigError::Unbounded`] (hand-built configs skip validation),
    /// or when a configured resume checkpoint cannot be used — callers
    /// that resume should prefer [`try_run`](Self::try_run).
    pub fn run(self) -> SearchOutcome {
        // justified: only reachable with a resume checkpoint
        // configured; those callers are documented onto try_run.
        self.try_run().expect("checkpoint error")
    }

    /// Runs the search, surfacing checkpoint problems as errors: a
    /// corrupt/truncated file, a schema from another version, or a
    /// checkpoint taken under a different configuration or mapspace.
    pub fn try_run(self) -> Result<SearchOutcome, CheckpointError> {
        let fingerprint = checkpoint::fingerprint(self.space, &self.config);
        let (checkpointer, resume) = match &self.checkpoint {
            None => (None, None),
            Some(spec) => {
                let resume = if spec.resume {
                    load_resume(&spec.path, fingerprint, self.config.strategy)?
                } else {
                    None
                };
                (
                    Some(Checkpointer::new(
                        spec.path.clone(),
                        spec.every,
                        fingerprint,
                    )),
                    resume,
                )
            }
        };
        let ctx = RunCtx {
            token: self.token,
            checkpointer,
            resume,
        };
        Ok(match self.sink {
            None => execute_ctx(self.space, &self.config, &ctx),
            Some(sink) => run_streaming(self.space, &self.config, sink, self.interval, &ctx),
        })
    }
}

/// Loads and validates a resume checkpoint; `Ok(None)` when the file
/// does not exist yet (first run of a checkpointed job).
fn load_resume(
    path: &std::path::Path,
    fingerprint: u64,
    strategy: SearchStrategy,
) -> Result<Option<SearchCheckpoint>, CheckpointError> {
    let cp = match SearchCheckpoint::load(path) {
        Ok(cp) => cp,
        Err(CheckpointError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(None);
        }
        Err(err) => return Err(err),
    };
    if cp.fingerprint != fingerprint || cp.strategy != strategy.name() {
        return Err(CheckpointError::ConfigMismatch);
    }
    if !cursor_matches(strategy, &cp.cursor) {
        return Err(CheckpointError::Corrupt(format!(
            "cursor does not belong to strategy `{}`",
            strategy.name()
        )));
    }
    Ok(Some(cp))
}

/// Whether `cursor` is a resume position the given strategy can occupy.
fn cursor_matches(strategy: SearchStrategy, cursor: &Cursor) -> bool {
    match (strategy, cursor) {
        (_, Cursor::Done { .. }) => true,
        // Random checkpoints a permuted cursor from the walk (the
        // default path) and a random cursor from the sampler fallback;
        // the path choice is deterministic, so resume re-derives it.
        (SearchStrategy::Random, Cursor::Permuted(c)) => c.phase == RandomPhase::Plain,
        (SearchStrategy::Random, Cursor::Random(c)) => c.phase == RandomPhase::Plain,
        // Sampled always runs the rejection sampler, so only a random
        // cursor (never a permuted one) can belong to it.
        (SearchStrategy::Sampled, Cursor::Random(c)) => c.phase == RandomPhase::Plain,
        // Exhaustive checkpoints a random cursor only from its fallback.
        (SearchStrategy::Exhaustive, Cursor::Random(c)) => c.phase == RandomPhase::Fallback,
        (SearchStrategy::Exhaustive, Cursor::Exhaustive(_)) => true,
        (SearchStrategy::Hybrid, Cursor::Permuted(c)) => c.phase == RandomPhase::Warmup,
        (SearchStrategy::Hybrid, Cursor::Random(c)) => {
            matches!(c.phase, RandomPhase::Warmup | RandomPhase::Fallback)
        }
        (SearchStrategy::Hybrid, Cursor::Exhaustive(_)) => true,
        (SearchStrategy::Anneal, Cursor::Anneal(_)) => true,
        _ => false,
    }
}

/// Per-run resilience wiring threaded from [`Engine::try_run`] down to
/// the strategies: cancellation token, checkpoint writer, restored
/// checkpoint.
#[derive(Default)]
pub(crate) struct RunCtx {
    pub(crate) token: Option<StopToken>,
    pub(crate) checkpointer: Option<Checkpointer>,
    pub(crate) resume: Option<SearchCheckpoint>,
}

/// Validates the invariants `search()` has always enforced by panic.
fn validate_run(config: &SearchConfig) {
    // justified: pre-Engine API contract — hand-built configs that skip
    // the builder have always been rejected by panic at run start.
    assert!(config.threads > 0, "{}", ConfigError::ZeroThreads);
    if matches!(
        config.strategy,
        SearchStrategy::Random | SearchStrategy::Sampled | SearchStrategy::Hybrid
    ) {
        // justified: same pre-Engine contract as the threads assert —
        // an unbounded random search would simply never return.
        assert!(
            config.max_evaluations.is_some() || config.termination.is_some(),
            "{}",
            ConfigError::Unbounded
        );
    }
}

/// Runs `config.strategy` over `mapspace` against `shared`; returns
/// whether the space was provably exhausted. A resume cursor in `ctx`
/// routes back into the exact leg (warmup / sweep / fallback) the
/// checkpoint was taken from.
fn dispatch(mapspace: &Mapspace, config: &SearchConfig, shared: &Shared, ctx: &RunCtx) -> bool {
    let cpr = ctx.checkpointer.as_ref();
    let cursor = ctx.resume.as_ref().map(|cp| &cp.cursor);
    match config.strategy {
        SearchStrategy::Random => {
            // The permuted walk is the default random path; the
            // rejection sampler only runs when the space fails to
            // tabulate. Both the failure and the choice are
            // deterministic, so a cursor of either kind resumes
            // straight back onto the leg that wrote it.
            match cursor {
                Some(Cursor::Permuted(c)) => permuted::run(
                    mapspace,
                    config,
                    shared,
                    c.budget,
                    RandomPhase::Plain,
                    cpr,
                    Some(c.positions.clone()),
                )
                .unwrap_or(false),
                Some(Cursor::Random(c)) => {
                    run_random(
                        mapspace,
                        config,
                        shared,
                        c.budget,
                        RandomPhase::Plain,
                        cpr,
                        Some(c.rngs.clone()),
                    );
                    false
                }
                _ => {
                    let budget = config.max_evaluations;
                    match permuted::run(
                        mapspace,
                        config,
                        shared,
                        budget,
                        RandomPhase::Plain,
                        cpr,
                        None,
                    ) {
                        Some(complete) => complete,
                        None => {
                            run_random(
                                mapspace,
                                config,
                                shared,
                                budget,
                                RandomPhase::Plain,
                                cpr,
                                None,
                            );
                            false
                        }
                    }
                }
            }
        }
        SearchStrategy::Sampled => {
            let (budget, rngs) = match cursor {
                Some(Cursor::Random(c)) => (c.budget, Some(c.rngs.clone())),
                _ => (config.max_evaluations, None),
            };
            run_random(
                mapspace,
                config,
                shared,
                budget,
                RandomPhase::Plain,
                cpr,
                rngs,
            );
            false
        }
        SearchStrategy::Exhaustive => {
            let resume = match cursor {
                Some(Cursor::Exhaustive(c)) => Some(exhaustive::Resume::Sweep(c.clone())),
                Some(Cursor::Random(c)) => Some(exhaustive::Resume::Fallback(c.clone())),
                _ => None,
            };
            let budget = match &resume {
                Some(exhaustive::Resume::Sweep(c)) => c.budget,
                Some(exhaustive::Resume::Fallback(c)) => c.budget,
                None => config.max_evaluations,
            };
            exhaustive::run(mapspace, config, shared, budget, cpr, resume)
        }
        SearchStrategy::Hybrid => {
            // A checkpoint from the enumeration leg (or its fallback)
            // means the warmup already completed: skip straight back.
            match cursor {
                Some(Cursor::Exhaustive(c)) => {
                    return exhaustive::run(
                        mapspace,
                        config,
                        shared,
                        c.budget,
                        cpr,
                        Some(exhaustive::Resume::Sweep(c.clone())),
                    );
                }
                Some(Cursor::Random(c)) if c.phase == RandomPhase::Fallback => {
                    return exhaustive::run(
                        mapspace,
                        config,
                        shared,
                        c.budget,
                        cpr,
                        Some(exhaustive::Resume::Fallback(c.clone())),
                    );
                }
                _ => {}
            }
            // Random warm-up seeds the pruning bound, then enumeration
            // spends the remainder. The warmup prefers the permuted
            // walk (inserting into the memo so the enumeration leg
            // dedups against it); a Random warmup cursor means the
            // tables failed on the original run, so resume re-enters
            // the sampler directly.
            let (warmup, walk_resume, sampler_rngs) = match cursor {
                Some(Cursor::Permuted(c)) => (c.budget, Some(c.positions.clone()), None),
                Some(Cursor::Random(c)) => (c.budget, None, Some(c.rngs.clone())),
                _ => (config.max_evaluations.map(|b| b / 3), None, None),
            };
            if let Some(rngs) = sampler_rngs {
                run_random(
                    mapspace,
                    config,
                    shared,
                    warmup,
                    RandomPhase::Warmup,
                    cpr,
                    Some(rngs),
                );
            } else if permuted::run(
                mapspace,
                config,
                shared,
                warmup,
                RandomPhase::Warmup,
                cpr,
                walk_resume,
            )
            .is_none()
            {
                run_random(
                    mapspace,
                    config,
                    shared,
                    warmup,
                    RandomPhase::Warmup,
                    cpr,
                    None,
                );
            }
            if shared.is_stopped_early() {
                // Interrupted mid-warmup: the warmup cursor was saved at
                // the drain point; do not enter the enumeration leg.
                return false;
            }
            // ordering: Relaxed — the warm-up threads were joined when
            // run_random returned, so these resets are already ordered
            // before the enumeration phase observes them.
            shared.stop.store(false, Ordering::Relaxed);
            shared.fails.store(0, Ordering::Relaxed);
            let spent = shared.evals.load(Ordering::Relaxed);
            // Deterministic on resume too: a restored warmup replays to
            // the same `spent`, so the remainder matches the
            // uninterrupted run's.
            let remainder = config.max_evaluations.map(|b| b.saturating_sub(spent));
            exhaustive::run(mapspace, config, shared, remainder, cpr, None)
        }
        // justified: dispatch callers peel off Anneal first
        // (it has no Shared); reaching this arm is a programming error.
        SearchStrategy::Anneal => unreachable!("anneal runs outside the Shared pipeline"),
    }
}

/// Drains `shared` into the final outcome.
fn collect(shared: Shared, exhausted: bool) -> SearchOutcome {
    // A panicking worker poisons the mutex but cannot leave the record
    // half-written (every update completes before unlock), so the poison
    // flag carries no information here and is safely discarded.
    let record = shared
        .record
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ordering: Relaxed — all workers joined; these are the final values.
    let stopped_early = shared.stopped_early.load(Ordering::Relaxed);
    let stop_reason = crate::stop_reason_name(shared.stop_reason.into_inner());
    SearchOutcome {
        best: record.best,
        evaluations: shared.evals.into_inner(),
        valid: shared.valid.into_inner(),
        invalid: shared.invalid.into_inner(),
        duplicates: shared.duplicates.into_inner(),
        pruned_subtrees: shared.pruned_subtrees.into_inner(),
        pruned_mappings: shared.pruned_mappings.into_inner(),
        exhausted,
        trace: record.trace,
        stopped_early,
        stop_reason,
        worker_restarts: shared.worker_restarts.into_inner(),
        quarantined: shared.quarantined.into_inner(),
    }
}

/// Maps a [`SearchConfig`] onto the annealer (strategy `Anneal`):
/// `max_evaluations` becomes the step budget, everything else carries
/// over; annealing-specific knobs keep their [`AnnealConfig`] defaults.
fn run_anneal(mapspace: &Mapspace, config: &SearchConfig, ctx: &RunCtx) -> SearchOutcome {
    let defaults = AnnealConfig::default();
    let anneal_config = AnnealConfig {
        seed: config.seed,
        steps: config.max_evaluations.unwrap_or(defaults.steps).max(1),
        objective: config.objective,
        model: config.model,
        dedup: config.dedup,
        ..defaults
    };
    let hooks = anneal::Hooks {
        token: ctx.token.as_ref(),
        deadline: config
            .max_seconds
            .filter(|s| s.is_finite() && *s > 0.0)
            .map(|s| Instant::now() + Duration::from_secs_f64(s)),
        checkpointer: ctx.checkpointer.as_ref(),
        resume: ctx.resume.as_ref(),
    };
    anneal::anneal_with(mapspace, &anneal_config, hooks)
}

/// The un-streamed execution path, with the resilience wiring attached.
pub(crate) fn execute_ctx(
    mapspace: &Mapspace,
    config: &SearchConfig,
    ctx: &RunCtx,
) -> SearchOutcome {
    if let Some(outcome) = replay_done(ctx) {
        return outcome;
    }
    if config.strategy == SearchStrategy::Anneal {
        let outcome = run_anneal(mapspace, config, ctx);
        finish_checkpoint(config, ctx, &outcome);
        return outcome;
    }
    validate_run(config);
    let mut shared = Shared::new(config);
    shared.token = ctx.token.clone();
    if let Some(cp) = &ctx.resume {
        checkpoint::restore_shared(&shared, cp);
    }
    let exhausted = dispatch(mapspace, config, &shared, ctx);
    let outcome = collect(shared, exhausted);
    finish_checkpoint(config, ctx, &outcome);
    outcome
}

/// Resuming a `Done` checkpoint replays the recorded outcome instead of
/// recomputing the (already finished) run.
fn replay_done(ctx: &RunCtx) -> Option<SearchOutcome> {
    let cp = ctx.resume.as_ref()?;
    matches!(cp.cursor, Cursor::Done { .. }).then(|| checkpoint::outcome_of_checkpoint(cp))
}

/// Writes the terminal `Done` checkpoint after an uninterrupted finish
/// (interrupted runs saved their resume cursor at the drain point).
fn finish_checkpoint(config: &SearchConfig, ctx: &RunCtx, outcome: &SearchOutcome) {
    if outcome.stopped_early {
        return;
    }
    if let Some(cpr) = &ctx.checkpointer {
        cpr.save(checkpoint::checkpoint_of_outcome(
            outcome,
            config.strategy.name(),
        ));
    }
}

/// A synthetic single snapshot for strategies that bypass [`Shared`]
/// (annealing): emitted after the fact so every streamed run still
/// yields at least one snapshot.
fn snapshot_of_outcome(outcome: &SearchOutcome, elapsed: Duration) -> SearchSnapshot {
    SearchSnapshot {
        seq: 1,
        elapsed_nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        evaluations: outcome.evaluations,
        valid: outcome.valid,
        invalid: outcome.invalid,
        duplicates: outcome.duplicates,
        pruned_subtrees: outcome.pruned_subtrees,
        pruned_mappings: outcome.pruned_mappings,
        improvements: outcome.trace.len() as u64,
        best_cost_bits: outcome
            .best
            .as_ref()
            .map_or(f64::INFINITY, |b| b.cost)
            .to_bits(),
        live_threads: 0,
        threads: 1,
    }
}

/// Sends the post-run records: the summary (always) and the metrics
/// dump (only in `telemetry`-feature builds, where the registry is
/// populated).
fn deliver_final(sink: &mut dyn ProgressSink, outcome: &SearchOutcome) {
    sink.finish(&serde::Serialize::to_value(outcome));
    if ruby_telemetry::enabled() {
        sink.metrics(&ruby_telemetry::registry().dump());
    }
}

/// The streamed execution path: workers publish, a monitor thread
/// forwards to the sink.
fn run_streaming(
    mapspace: &Mapspace,
    config: &SearchConfig,
    mut sink: Box<dyn ProgressSink>,
    interval: Duration,
    ctx: &RunCtx,
) -> SearchOutcome {
    if let Some(outcome) = replay_done(ctx) {
        // A finished run replayed from its `Done` checkpoint: stream the
        // recorded state so sinks still observe a complete run.
        sink.emit(&snapshot_of_outcome(&outcome, Duration::ZERO));
        deliver_final(sink.as_mut(), &outcome);
        return outcome;
    }
    if config.strategy == SearchStrategy::Anneal {
        let start = Instant::now();
        let outcome = run_anneal(mapspace, config, ctx);
        sink.emit(&snapshot_of_outcome(&outcome, start.elapsed()));
        deliver_final(sink.as_mut(), &outcome);
        finish_checkpoint(config, ctx, &outcome);
        return outcome;
    }
    validate_run(config);
    let mut shared = Shared::new(config);
    shared.token = ctx.token.clone();
    if let Some(cp) = &ctx.resume {
        checkpoint::restore_shared(&shared, cp);
    }
    shared.progress = Some(ProgressState::new(config.threads as u64));
    let done = std::sync::atomic::AtomicBool::new(false);
    let exhausted = {
        let shared = &shared;
        let done = &done;
        let sink = sink.as_mut();
        std::thread::scope(|scope| {
            scope.spawn(move || monitor(sink, shared, done, interval));
            let exhausted = dispatch(mapspace, config, shared, ctx);
            // The post-join counters are exact now; force one last
            // snapshot so even instant runs stream >= 1.
            shared.publish_progress();
            done.store(true, std::sync::atomic::Ordering::SeqCst);
            exhausted
        })
    };
    let outcome = collect(shared, exhausted);
    deliver_final(sink.as_mut(), &outcome);
    finish_checkpoint(config, ctx, &outcome);
    outcome
}

/// The monitor loop: forward each fresh snapshot (dedup by `seq`),
/// sleep in short slices so shutdown stays prompt, and drain the final
/// snapshot after the engine signals completion.
fn monitor(
    sink: &mut dyn ProgressSink,
    shared: &Shared,
    done: &std::sync::atomic::AtomicBool,
    interval: Duration,
) {
    const SLICE: Duration = Duration::from_millis(5);
    let mut last_seq = 0u64;
    loop {
        let finished = done.load(std::sync::atomic::Ordering::SeqCst);
        if let Some(progress) = &shared.progress {
            if let Some(words) = progress.slot.read() {
                let snapshot = SearchSnapshot::decode(&words);
                if snapshot.seq > last_seq {
                    last_seq = snapshot.seq;
                    sink.emit(&snapshot);
                }
            }
        }
        if finished {
            return;
        }
        let mut waited = Duration::ZERO;
        while waited < interval && !done.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(SLICE.min(interval - waited));
            waited += SLICE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use ruby_arch::presets;
    use ruby_mapspace::MapspaceKind;
    use ruby_telemetry::MemorySink;
    use ruby_workload::ProblemShape;

    fn toy_space() -> Mapspace {
        Mapspace::new(
            presets::toy_linear(16, 1024),
            ProblemShape::rank1("d", 113),
            MapspaceKind::RubyS,
        )
    }

    #[test]
    fn builder_accepts_a_valid_config() {
        let config = SearchConfig::builder()
            .seed(9)
            .max_evaluations(5_000)
            .termination(500)
            .threads(2)
            .objective(Objective::Energy)
            .strategy(SearchStrategy::Hybrid)
            .prune(true)
            .dedup(true)
            .memo_bits(10)
            .max_trace(64)
            .build()
            .expect("valid config");
        assert_eq!(config.seed, 9);
        assert_eq!(config.max_evaluations, Some(5_000));
        assert_eq!(config.termination, Some(500));
        assert_eq!(config.threads, 2);
        assert_eq!(config.objective, Objective::Energy);
        assert_eq!(config.strategy, SearchStrategy::Hybrid);
        assert_eq!(config.memo_bits, 10);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let err = |b: SearchConfigBuilder| b.build().expect_err("must be rejected");
        assert_eq!(
            err(SearchConfig::builder().threads(0)),
            ConfigError::ZeroThreads
        );
        assert_eq!(
            err(SearchConfig::builder().max_evaluations(-5)),
            ConfigError::NegativeBudget("max_evaluations", -5)
        );
        assert_eq!(
            err(SearchConfig::builder().termination(-1)),
            ConfigError::NegativeBudget("termination", -1)
        );
        assert_eq!(
            err(SearchConfig::builder().max_evaluations(0)),
            ConfigError::ZeroBudget
        );
        assert_eq!(
            err(SearchConfig::builder()
                .no_max_evaluations()
                .no_termination()),
            ConfigError::Unbounded
        );
        assert_eq!(
            err(SearchConfig::builder()
                .strategy(SearchStrategy::Hybrid)
                .prune(false)),
            ConfigError::UnprunedHybrid
        );
        // Exhaustive terminates on its own: unbounded is fine there.
        assert!(SearchConfig::builder()
            .strategy(SearchStrategy::Exhaustive)
            .no_max_evaluations()
            .no_termination()
            .build()
            .is_ok());
    }

    #[test]
    fn builder_reports_the_first_error() {
        let err = SearchConfig::builder()
            .max_evaluations(-3)
            .termination(-9)
            .threads(0)
            .build()
            .expect_err("must be rejected");
        assert_eq!(err, ConfigError::NegativeBudget("max_evaluations", -3));
    }

    #[test]
    fn config_errors_render_actionable_messages() {
        for (error, needle) in [
            (ConfigError::ZeroThreads, "thread"),
            (ConfigError::ZeroBudget, "zero budget"),
            (ConfigError::NegativeBudget("termination", -2), "-2"),
            (ConfigError::Unbounded, "unbounded"),
            (ConfigError::UnprunedHybrid, "hybrid"),
            (ConfigError::UnknownObjective("speed".into()), "speed"),
            (ConfigError::UnknownStrategy("genetic".into()), "genetic"),
        ] {
            let message = error.to_string();
            assert!(message.contains(needle), "{message:?} lacks {needle:?}");
        }
    }

    #[test]
    fn engine_runs_are_reproducible_under_a_fixed_seed() {
        let space = toy_space();
        let config = SearchConfig {
            seed: 3,
            threads: 1,
            ..SearchConfig::default()
        };
        let first = Engine::new(&space).with_config(config.clone()).run();
        let second = Engine::new(&space).with_config(config).run();
        assert_eq!(first.evaluations, second.evaluations);
        assert_eq!(first.valid, second.valid);
        assert_eq!(first.trace, second.trace);
        assert_eq!(
            first.best.expect("valid mappings").cost,
            second.best.expect("valid mappings").cost
        );
    }

    #[test]
    fn engine_runs_the_anneal_strategy() {
        let space = toy_space();
        let outcome = Engine::new(&space)
            .with_config(
                SearchConfig::builder()
                    .strategy(SearchStrategy::Anneal)
                    .max_evaluations(2_000)
                    .threads(1)
                    .build()
                    .expect("valid config"),
            )
            .run();
        assert_eq!(
            outcome
                .best
                .expect("annealing finds the optimum")
                .report
                .cycles(),
            8
        );
        assert!(!outcome.exhausted, "annealing never proves exhaustion");
    }

    #[test]
    fn streaming_emits_snapshots_and_a_matching_summary() {
        let space = toy_space();
        let sink = MemorySink::new();
        let outcome = Engine::new(&space)
            .with_config(
                SearchConfig::builder()
                    .seed(1)
                    .max_evaluations(4_000)
                    .no_termination()
                    .threads(2)
                    .build()
                    .expect("valid config"),
            )
            .with_progress(Box::new(sink.clone()))
            .progress_interval(Duration::from_millis(1))
            .run();
        let snapshots = sink.snapshots();
        assert!(!snapshots.is_empty(), "streaming must emit >= 1 snapshot");
        // The final snapshot is published after the worker join, so it
        // agrees with the outcome exactly.
        let last = snapshots.last().expect("non-empty");
        assert_eq!(last.evaluations, outcome.evaluations);
        assert_eq!(last.valid, outcome.valid);
        assert_eq!(last.invalid, outcome.invalid);
        assert_eq!(last.duplicates, outcome.duplicates);
        assert_eq!(last.threads, 2);
        assert!(
            snapshots.windows(2).all(|w| w[0].seq < w[1].seq),
            "monitor must deduplicate by seq"
        );
        let summary = sink.summary().expect("finish must run");
        assert_eq!(
            summary.get("event"),
            Some(&serde::Value::Str("summary".to_owned()))
        );
        let round_trip =
            <SearchOutcome as serde::Deserialize>::from_value(&summary).expect("summary parses");
        assert_eq!(round_trip.evaluations, outcome.evaluations);
        assert_eq!(round_trip.valid, outcome.valid);
        assert_eq!(round_trip.duplicates, outcome.duplicates);
        // Metrics arrive only in feature builds, where the registry has
        // real counters behind it.
        assert_eq!(sink.metrics_dump().is_some(), ruby_telemetry::enabled());
    }

    #[test]
    fn streaming_anneal_synthesizes_one_snapshot() {
        let space = toy_space();
        let sink = MemorySink::new();
        let outcome = Engine::new(&space)
            .with_config(
                SearchConfig::builder()
                    .strategy(SearchStrategy::Anneal)
                    .max_evaluations(500)
                    .build()
                    .expect("valid config"),
            )
            .with_progress(Box::new(sink.clone()))
            .run();
        let snapshots = sink.snapshots();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(snapshots[0].evaluations, outcome.evaluations);
        assert!(sink.summary().is_some());
    }
}
