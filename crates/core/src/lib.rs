//! # Ruby: imperfect-factorization mapspaces for tensor accelerators
//!
//! A from-scratch Rust reproduction of *"Ruby: Improving Hardware
//! Efficiency for Tensor Algebra Accelerators Through Imperfect
//! Factorization"* (Horeni et al., ISPASS 2022), including the
//! Timeloop-like substrate it builds on: workload model, architecture
//! model, analytical cost model, mapspace generation and random search.
//!
//! State-of-the-art mappers tile tensor dimensions using *perfect*
//! (remainderless) factorization, so a 14×12 PE array runs a 27-wide
//! loop at 9-wide parallelism. Ruby expands the mapspace with
//! *imperfect* factors — loop counts with remainders — so the same loop
//! runs 14-wide for one extra, partially-filled iteration. **Ruby-S**
//! restricts the expansion to spatial factors, buying most of the
//! utilization win at a moderate mapspace growth.
//!
//! ## Quickstart
//!
//! ```
//! use ruby_core::prelude::*;
//!
//! // A 14×12 Eyeriss-like accelerator and one ResNet-50 layer.
//! let arch = presets::eyeriss_like(14, 12);
//! let layer = ProblemShape::conv("pw", 1, 256, 64, 56, 56, 1, 1, (1, 1));
//!
//! let explorer = Explorer::new(arch)
//!     .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
//!     .with_search(SearchConfig { seed: 1, ..SearchConfig::default() });
//!
//! let pfm = explorer.explore(&layer, MapspaceKind::Pfm).expect("valid mapping");
//! let ruby_s = explorer.explore(&layer, MapspaceKind::RubyS).expect("valid mapping");
//! assert!(ruby_s.report.edp() <= pfm.report.edp());
//! ```
//!
//! The submodule crates are re-exported: [`workload`], [`arch`],
//! [`energy`], [`mapping`], [`mapspace`], [`model`], [`search`].

pub use ruby_arch as arch;
pub use ruby_energy as energy;
pub use ruby_mapping as mapping;
pub use ruby_mapspace as mapspace;
pub use ruby_model as model;
pub use ruby_search as search;
pub use ruby_workload as workload;

/// One-stop imports for typical use.
pub mod prelude {
    pub use ruby_arch::{presets, Architecture, Capacity, Fanout, MemLevel};
    pub use ruby_energy::TechnologyModel;
    pub use ruby_mapping::{display::render_loopnest, Mapping, SlotKind};
    pub use ruby_mapspace::{padding, Constraints, DimSet, Mapspace, MapspaceKind};
    pub use ruby_model::{
        evaluate, evaluate_with, CostReport, EvalContext, InvalidMapping, ModelOptions,
    };
    pub use ruby_search::anneal::{anneal, AnnealConfig};
    pub use ruby_search::write_atomic;
    pub use ruby_search::{
        BestMapping, CheckpointError, ConfigError, Engine, HumanSink, JsonlSink, MemorySink,
        MultiSink, Objective, ProgressSink, SearchCheckpoint, SearchConfig, SearchConfigBuilder,
        SearchOutcome, SearchSnapshot, SearchStrategy, StopToken, CHECKPOINT_SCHEMA,
        SCHEMA_VERSION,
    };
    pub use ruby_workload::{suites, Dim, DimMap, Operand, ProblemShape};

    pub use crate::{Comparison, Explorer};
}

use ruby_arch::Architecture;
use ruby_mapspace::{Constraints, Mapspace, MapspaceKind};
use ruby_search::{BestMapping, Engine, SearchConfig, SearchOutcome};
use ruby_workload::ProblemShape;

/// High-level mapping exploration: an architecture plus constraints and
/// a search configuration, reusable across workloads and mapspace kinds.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Explorer {
    arch: Architecture,
    constraints: Constraints,
    config: SearchConfig,
}

impl Explorer {
    /// Creates an explorer with unconstrained mappings and default
    /// search settings.
    pub fn new(arch: Architecture) -> Self {
        let constraints = Constraints::unconstrained(arch.num_levels());
        Explorer {
            arch,
            constraints,
            config: SearchConfig::default(),
        }
    }

    /// Replaces the mapping constraints.
    ///
    /// # Panics
    ///
    /// Panics if the constraints cover a different number of levels than
    /// the architecture.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        assert_eq!(
            constraints.num_levels(),
            self.arch.num_levels(),
            "constraints must cover every architecture level"
        );
        self.constraints = constraints;
        self
    }

    /// Replaces the search configuration.
    pub fn with_search(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// The architecture under exploration.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The active constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The active search configuration.
    pub fn search_config(&self) -> &SearchConfig {
        &self.config
    }

    /// The mapspace of `kind` for `shape` on this explorer's
    /// architecture and constraints.
    pub fn mapspace(&self, shape: &ProblemShape, kind: MapspaceKind) -> Mapspace {
        Mapspace::new(self.arch.clone(), shape.clone(), kind)
            .with_constraints(self.constraints.clone())
    }

    /// Searches the mapspace of `kind` for the best mapping of `shape`.
    /// Returns `None` if no valid mapping was found within the search
    /// budget.
    pub fn explore(&self, shape: &ProblemShape, kind: MapspaceKind) -> Option<BestMapping> {
        self.explore_with_outcome(shape, kind).best
    }

    /// Like [`Explorer::explore`], but returns the full
    /// [`SearchOutcome`] including the best-so-far trace.
    pub fn explore_with_outcome(&self, shape: &ProblemShape, kind: MapspaceKind) -> SearchOutcome {
        Engine::new(&self.mapspace(shape, kind))
            .with_config(self.config.clone())
            .run()
    }

    /// Searches all four mapspaces for `shape` and reports their best
    /// mappings side by side.
    pub fn compare(&self, shape: &ProblemShape) -> Comparison {
        let results = MapspaceKind::ALL.map(|kind| self.explore(shape, kind));
        Comparison { results }
    }
}

/// Best mappings per mapspace kind, in [`MapspaceKind::ALL`] order.
#[derive(Debug, Clone)]
pub struct Comparison {
    results: [Option<BestMapping>; 4],
}

impl Comparison {
    /// The best mapping found in the mapspace of `kind`, if any.
    pub fn best(&self, kind: MapspaceKind) -> Option<&BestMapping> {
        // lint: allow(panics) — MapspaceKind::ALL enumerates every
        // variant, so any `kind` value has a position.
        let idx = MapspaceKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("all kinds listed");
        self.results[idx].as_ref()
    }

    /// The EDP of `kind`'s best mapping relative to the PFM baseline
    /// (1.0 = parity, < 1.0 = better than PFM). `None` if either search
    /// came up empty.
    pub fn edp_vs_pfm(&self, kind: MapspaceKind) -> Option<f64> {
        let pfm = self.best(MapspaceKind::Pfm)?;
        let other = self.best(kind)?;
        Some(other.report.edp() / pfm.report.edp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_arch::presets;

    fn quick_config() -> SearchConfig {
        SearchConfig {
            max_evaluations: Some(3_000),
            termination: Some(300),
            ..Default::default()
        }
    }

    #[test]
    fn explorer_round_trip() {
        let arch = presets::toy_linear(16, 1024);
        let explorer = Explorer::new(arch).with_search(quick_config());
        let shape = ProblemShape::rank1("d", 113);
        let best = explorer
            .explore(&shape, MapspaceKind::RubyS)
            .expect("valid mapping");
        assert_eq!(best.report.cycles(), 8);
    }

    #[test]
    fn comparison_ranks_ruby_s_at_or_above_pfm() {
        let arch = presets::toy_linear(16, 1024);
        let explorer = Explorer::new(arch).with_search(quick_config());
        let comparison = explorer.compare(&ProblemShape::rank1("d", 113));
        let ratio = comparison
            .edp_vs_pfm(MapspaceKind::RubyS)
            .expect("both found");
        assert!(
            ratio < 1.0,
            "Ruby-S must beat PFM on a prime bound, got {ratio}"
        );
        assert_eq!(comparison.edp_vs_pfm(MapspaceKind::Pfm), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "every architecture level")]
    fn mismatched_constraints_rejected() {
        let arch = presets::toy_linear(4, 1024);
        let _ = Explorer::new(arch).with_constraints(Constraints::unconstrained(5));
    }
}
