//! The chaos harness: a live `ruby serve --socket` server driven
//! through injected worker panics, torn store writes, response delays,
//! and dropped connections (`--features failpoints`), by concurrent
//! clients mixing cold, warm, and tiny-deadline queries.
//!
//! Invariants asserted:
//!
//! * every response line any client receives is schema-valid and
//!   terminal — a `store`/`search`/`partial`/`shed` response or a
//!   structured error object — and well-behaved connections get exactly
//!   one line per query;
//! * the store never corrupts: after shutdown a plain reopen finds
//!   every key acknowledged by a `search`/`partial` response, with no
//!   torn tail and no `.tmp` litter;
//! * the server drains cleanly under fire: the stop request ends the
//!   session, the socket file is removed, and the summary accounts for
//!   the queries.

#![cfg(all(unix, feature = "failpoints"))]

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use serde::Deserialize as _;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 10;
/// Small prime extents: distinct configs with fast cold searches;
/// repeats across clients turn into warm hits.
const EXTENTS: [u64; 5] = [97, 113, 131, 151, 173];

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruby-cli-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds one protocol line via the CLI's own `query --print`.
fn query_line(extent: u64, deadline_ms: Option<u64>) -> String {
    let mut args: Vec<String> = [
        "query",
        "--arch",
        "toy:16,1024",
        "--workload",
        &format!("rank1:{extent}"),
        "--budget",
        "quick",
        "--print",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(ms) = deadline_ms {
        args.push("--deadline-ms".to_owned());
        args.push(ms.to_string());
    }
    ruby_cli::run(&args).unwrap().trim().to_owned()
}

/// Sends one query over its own connection; `Some(line)` when a
/// response arrived, `None` when the (possibly injected) fault dropped
/// the connection first.
fn round_trip(socket: &Path, line: &str) -> Option<String> {
    let stream = connect(socket)?;
    let mut writer = stream.try_clone().ok()?;
    writeln!(writer, "{line}").ok()?;
    writer.flush().ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut response = String::new();
    match BufReader::new(stream).read_line(&mut response) {
        Ok(n) if n > 0 => Some(response),
        _ => None,
    }
}

fn connect(socket: &Path) -> Option<UnixStream> {
    for _ in 0..100 {
        if let Ok(stream) = UnixStream::connect(socket) {
            return Some(stream);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// A terminal response must be a schema-valid error object or a
/// response whose source is one of the four verdicts; returns the
/// store key for acknowledged cold results (`search`/`partial`).
fn check_terminal(line: &str) -> Option<u64> {
    let value: serde::Value = serde_json::from_str(line.trim())
        .unwrap_or_else(|e| panic!("unparseable response line: {e}: {line:?}"));
    let schema = value
        .get("schema")
        .and_then(|v| v.as_u64().ok())
        .unwrap_or_else(|| panic!("response without a schema: {line:?}"));
    assert_eq!(schema, ruby_server::API_SCHEMA, "wrong schema: {line:?}");
    if value.get("error").is_some() {
        return None;
    }
    let response = ruby_server::MapResponse::from_value(&value)
        .unwrap_or_else(|e| panic!("non-terminal response line: {e}: {line:?}"));
    match response.source {
        ruby_server::ResponseSource::Search | ruby_server::ResponseSource::Partial => {
            assert!(response.mapping.is_some(), "cold result without a mapping");
            Some(response.key)
        }
        ruby_server::ResponseSource::Store => {
            assert!(response.mapping.is_some(), "warm result without a mapping");
            None
        }
        ruby_server::ResponseSource::Shed => {
            assert!(response.retry_after_ms.is_some(), "shed without retry hint");
            assert!(response.mapping.is_none(), "shed with a mapping");
            None
        }
    }
}

#[test]
fn a_live_server_survives_injected_chaos_with_a_consistent_store() {
    let dir = test_dir("storm");
    let store_path = dir.join("store.log");
    let socket = dir.join("mapper.sock");

    ruby_failpoints::reset();
    // The storm: occasional evaluation panics inside the engine,
    // frequent torn store appends, slowed cold searches (saturating the
    // 2-worker pool), and dropped responses.
    assert!(ruby_failpoints::arm("search.eval", "p:0.02:panic"));
    assert!(ruby_failpoints::arm("store.append", "p:0.25:torn:35"));
    assert!(ruby_failpoints::arm("server.worker", "p:0.3:delay:40"));
    assert!(ruby_failpoints::arm("serve.respond", "p:0.1:err"));

    let serve_args: Vec<String> = [
        "serve",
        "--store",
        &store_path.display().to_string(),
        "--socket",
        &socket.display().to_string(),
        "--workers",
        "2",
        "--queue-depth",
        "2",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || ruby_cli::run(&serve_args));

    let acked = Mutex::new(HashSet::<u64>::new());
    let mut answered = 0usize;
    let mut dropped = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let acked = &acked;
                let socket = socket.as_path();
                scope.spawn(move || {
                    let mut answered = 0usize;
                    let mut dropped = 0usize;
                    for i in 0..QUERIES_PER_CLIENT {
                        let extent = EXTENTS[(c + i) % EXTENTS.len()];
                        // Every fourth query carries a deadline too
                        // tight for a delayed cold search.
                        let deadline = (i % 4 == 3).then_some(30);
                        let line = query_line(extent, deadline);
                        match round_trip(socket, &line) {
                            Some(response) => {
                                answered += 1;
                                if let Some(key) = check_terminal(&response) {
                                    acked.lock().unwrap().insert(key);
                                }
                            }
                            None => dropped += 1,
                        }
                    }
                    // A rude disconnect: send a query and vanish without
                    // reading; the server must shrug the write failure off.
                    if let Some(stream) = connect(socket) {
                        let mut stream = stream;
                        let _ =
                            writeln!(stream, "{}", query_line(EXTENTS[c % EXTENTS.len()], None));
                        drop(stream);
                    }
                    (answered, dropped)
                })
            })
            .collect();
        for handle in handles {
            let (a, d) = handle.join().expect("client thread survived");
            answered += a;
            dropped += d;
        }
    });

    assert_eq!(
        answered + dropped,
        CLIENTS * QUERIES_PER_CLIENT,
        "every query accounted for"
    );
    assert!(
        answered > 0,
        "the storm must not have severed every connection"
    );

    // Clean drain under fire: stop, join, summary.
    ruby_cli::interrupts::request_stop();
    let summary = server.join().expect("server thread survived").unwrap();
    let summary: serde::Value = serde_json::from_str(&summary).unwrap();
    let served = summary.get("queries").unwrap().as_u64().unwrap();
    assert!(
        served >= answered as u64,
        "summary counts at least the answered queries ({served} < {answered})"
    );
    assert!(!socket.exists(), "socket file removed on shutdown");

    ruby_failpoints::reset();

    // Store consistency: a plain reopen (no scrub) finds every
    // acknowledged cold result — torn appends never corrupted later
    // acked frames — with no torn tail and no litter.
    let reopened = ruby_store::MappingStore::open(&store_path).unwrap();
    assert_eq!(reopened.recovered_bytes(), 0, "log reopened torn-free");
    for key in acked.lock().unwrap().iter() {
        assert!(
            reopened.get(*key).is_some(),
            "acknowledged key {key:016x} missing after reopen"
        );
    }
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "tmp litter leaked: {name}");
        assert!(
            !name.ends_with(".quarantine"),
            "self-healing appends must not need quarantine: {name}"
        );
    }
}
