//! Subcommand implementations for the `ruby` binary.

use std::fmt::Write as _;

use ruby_core::prelude::*;
use ruby_simulator::{simulate as run_sim, SimLimits};
use serde::Serialize as _;

use crate::parse::{parse_arch, parse_kind, parse_suite, parse_workload, OutputOpts};
use crate::{CliError, Flags};

fn budget_config(flags: &Flags) -> Result<SearchConfig, CliError> {
    let (max_evals, termination, threads) = match flags.get("budget").unwrap_or("medium") {
        "quick" => (3_000, 400, 2),
        "medium" => (15_000, 1_500, 8),
        "full" => (60_000, 3_000, 8),
        other => return Err(CliError::Usage(format!("unknown budget '{other}'"))),
    };
    let threads = match flags.get("threads") {
        Some(t) => t
            .parse()
            .ok()
            .filter(|&t: &usize| t > 0)
            .ok_or_else(|| CliError::Usage("--threads must be a positive number".into()))?,
        None => threads,
    };
    let objective: Objective = flags
        .get("objective")
        .unwrap_or("edp")
        .parse()
        .map_err(|e: ConfigError| CliError::Usage(e.to_string()))?;
    let strategy: SearchStrategy = match flags.get("strategy") {
        Some(s) => s
            .parse()
            .map_err(|e: ConfigError| CliError::Usage(e.to_string()))?,
        None => SearchStrategy::Random,
    };
    let prune = match flags.get("prune").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "--prune takes 'on' or 'off', not '{other}'"
            )))
        }
    };
    let seed = flags
        .get("seed")
        .map(str::parse)
        .transpose()
        .map_err(|_| CliError::Usage("--seed must be a number".into()))?
        .unwrap_or(1);
    let max_evals = match flags.get("max-evals") {
        Some(n) => n
            .parse()
            .ok()
            .filter(|&n: &i64| n > 0)
            .ok_or_else(|| CliError::Usage("--max-evals must be a positive number".into()))?,
        None => max_evals,
    };
    let mut builder = SearchConfig::builder()
        .seed(seed)
        .max_evaluations(max_evals)
        .termination(termination)
        .threads(threads)
        .objective(objective)
        .strategy(strategy)
        .prune(prune);
    if let Some(seconds) = flags.get("max-seconds") {
        let seconds: f64 = seconds
            .parse()
            .map_err(|_| CliError::Usage("--max-seconds must be a number of seconds".into()))?;
        builder = builder.max_seconds(seconds);
    }
    builder.build().map_err(|e| CliError::Usage(e.to_string()))
}

fn explorer(flags: &Flags, arch: Architecture) -> Result<Explorer, CliError> {
    let mut e = Explorer::new(arch);
    if flags.has("eyeriss-constraints") {
        if e.arch().num_levels() != 3 {
            return Err(CliError::Usage(
                "--eyeriss-constraints expects a 3-level hierarchy".into(),
            ));
        }
        e = e.with_constraints(Constraints::eyeriss_row_stationary(3, 1));
    }
    Ok(e.with_search(budget_config(flags)?))
}

fn report_block(report: &CostReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  macs:        {}", report.macs());
    let _ = writeln!(out, "  cycles:      {}", report.cycles());
    let _ = writeln!(out, "  energy:      {:.4e}", report.energy());
    let _ = writeln!(out, "  EDP:         {:.4e}", report.edp());
    let _ = writeln!(out, "  utilization: {:.1}%", report.utilization() * 100.0);
    for level in report.level_stats() {
        let _ = writeln!(
            out,
            "  {:<8} accesses {:>14.0}  energy {:>12.4e}",
            level.name(),
            level.total_accesses(),
            level.energy()
        );
    }
    out
}

/// `ruby search`: find the best mapping in one mapspace.
///
/// Output flags: `--json` prints the full [`SearchOutcome`] as JSON
/// (schema-versioned, same document the bench tools emit), `--out`
/// writes the best mapping for `ruby evaluate`/`analyze`/`simulate`,
/// `--progress` streams a live progress line to stderr, and
/// `--metrics-out <path>` appends snapshot/summary JSONL records (plus
/// a metrics dump in `telemetry`-feature builds).
pub fn search(args: &[String]) -> Result<String, CliError> {
    let mut bools = vec!["eyeriss-constraints", "resume"];
    bools.extend(OutputOpts::BOOLS);
    let flags = Flags::parse(args, &bools)?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let kind = parse_kind(flags.get("space").unwrap_or("ruby-s"))?;
    let output = OutputOpts::from_flags(&flags);
    let explorer = explorer(&flags, arch)?;
    let space = explorer.mapspace(&shape, kind);
    let token = StopToken::new();
    crate::interrupts::register(&token);
    let mut engine = Engine::new(&space)
        .with_config(explorer.search_config().clone())
        .with_stop_token(token);
    let every = match flags.get("checkpoint-every") {
        Some(n) => n.parse().ok().filter(|&n: &u64| n > 0).ok_or_else(|| {
            CliError::Usage("--checkpoint-every must be a positive number".into())
        })?,
        None => 10_000,
    };
    match flags.get("checkpoint") {
        Some(path) => {
            engine = engine.with_checkpoint(path, every);
            if flags.has("resume") {
                engine = engine.resume();
            }
        }
        None if flags.has("resume") => {
            return Err(CliError::Usage(
                "--resume needs --checkpoint <path> to resume from".into(),
            ));
        }
        None => {}
    }
    if let Some(sinks) = output.sink()? {
        engine = engine.with_progress(Box::new(sinks));
    }
    let outcome = engine.try_run()?;
    if let (Some(path), Some(best)) = (&output.out, outcome.best.as_ref()) {
        let json = serde_json::to_string_pretty(&best.mapping)
            .map_err(|e| CliError::Spec(format!("serializing mapping: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    if output.json {
        // The JSON document reports the outcome whether or not a valid
        // mapping was found; consumers check `best` themselves.
        return serde_json::to_string_pretty(&outcome)
            .map_err(|e| CliError::Spec(format!("serializing outcome: {e}")));
    }
    let best = outcome.best.ok_or_else(|| {
        CliError::Empty(format!(
            "no valid {kind} mapping found in {} evaluations",
            outcome.evaluations
        ))
    })?;
    let mut out = format!(
        "best {kind} mapping for {} ({} evaluations, {} valid):\n",
        shape.name(),
        outcome.evaluations,
        outcome.valid
    );
    let _ = writeln!(
        out,
        "  considered:  {} invalid, {} duplicates, {} pruned ({} subtrees){}",
        outcome.invalid,
        outcome.duplicates,
        outcome.pruned_mappings,
        outcome.pruned_subtrees,
        if outcome.exhausted {
            " — mapspace exhausted"
        } else {
            ""
        }
    );
    if outcome.stopped_early {
        let _ = writeln!(
            out,
            "  stopped early: {}",
            outcome.stop_reason.as_deref().unwrap_or("unknown")
        );
    }
    if outcome.worker_restarts > 0 {
        let _ = writeln!(
            out,
            "  supervision:  {} worker restart(s), {} candidate(s) quarantined",
            outcome.worker_restarts, outcome.quarantined
        );
    }
    out.push_str(&report_block(&best.report));
    out.push_str("\nloop nest:\n");
    let names: Vec<&str> = explorer.arch().levels().iter().map(|l| l.name()).collect();
    out.push_str(&render_loopnest(&best.mapping, &names));
    Ok(out)
}

/// `ruby evaluate`: cost a serialized mapping with the analytical model.
pub fn evaluate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let text = std::fs::read_to_string(flags.require("mapping")?)?;
    let mapping: Mapping =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(format!("mapping: {e}")))?;
    match ruby_core::model::evaluate(&arch, &shape, &mapping, &ModelOptions::default()) {
        Ok(report) => Ok(format!("{}:\n{}", shape.name(), report_block(&report))),
        Err(e) => Err(CliError::Empty(format!("invalid mapping: {e}"))),
    }
}

/// `ruby analyze`: run the semantic mapping verifier over a serialized
/// mapping and report every problem at once (stable `RBYxxx` codes),
/// instead of the cost model's first-error-only rejection.
///
/// Output flags match `ruby search`: `--json` prints the analysis as
/// JSON, `--out <path>` writes that JSON to a file, and `--metrics-out
/// <path>` appends the analysis as a JSONL summary record.
pub fn analyze(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &OutputOpts::BOOLS)?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let output = OutputOpts::from_flags(&flags);
    let text = std::fs::read_to_string(flags.require("mapping")?)?;
    let mapping: Mapping =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(format!("mapping: {e}")))?;
    let analysis = ruby_analysis::MappingAnalyzer::new(&arch, &shape).analyze(&mapping);
    if let Some(mut sinks) = output.sink()? {
        sinks.finish(&analysis.to_value());
    }
    if output.json || output.out.is_some() {
        let json = serde_json::to_string_pretty(&analysis)
            .map_err(|e| CliError::Spec(format!("serializing analysis: {e}")))?;
        if let Some(path) = &output.out {
            write_atomic(path, json.as_bytes())?;
        }
        if output.json {
            return Ok(json);
        }
    }
    Ok(analysis.render())
}

/// `ruby simulate`: execute a serialized mapping in the functional
/// simulator and report exact counts.
pub fn simulate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let text = std::fs::read_to_string(flags.require("mapping")?)?;
    let mapping: Mapping =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(format!("mapping: {e}")))?;
    let sim = run_sim(&arch, &shape, &mapping, &SimLimits::default())
        .map_err(|e| CliError::Empty(e.to_string()))?;
    let mut out = format!(
        "simulated {}: {} MACs in {} cycles\n",
        shape.name(),
        sim.macs,
        sim.cycles
    );
    for (i, level) in arch.levels().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<8} fills {:?}  drains {:?}  peak {:?}",
            level.name(),
            sim.fills[i],
            sim.drains[i],
            sim.peak_footprint[i]
        );
    }
    Ok(out)
}

/// `ruby compare`: all four mapspaces side by side.
pub fn compare(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["eyeriss-constraints"])?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let explorer = explorer(&flags, arch)?;
    let comparison = explorer.compare(&shape);
    let mut out = format!(
        "{:<8} {:>13} {:>10} {:>8} {:>8}\n",
        "space", "EDP", "cycles", "util", "vs PFM"
    );
    for kind in MapspaceKind::ALL {
        match comparison.best(kind) {
            Some(best) => {
                let vs = comparison
                    .edp_vs_pfm(kind)
                    .map(|x| format!("{x:.3}"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:<8} {:>13.4e} {:>10} {:>7.1}% {:>8}",
                    kind.name(),
                    best.report.edp(),
                    best.report.cycles(),
                    best.report.utilization() * 100.0,
                    vs
                );
            }
            None => {
                let _ = writeln!(out, "{:<8} no valid mapping", kind.name());
            }
        }
    }
    Ok(out)
}

/// `ruby show`: print an architecture (optionally writing its JSON).
pub fn show(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let arch = parse_arch(flags.require("arch")?)?;
    if let Some(path) = flags.get("out") {
        let json = serde_json::to_string_pretty(&arch)
            .map_err(|e| CliError::Spec(format!("serializing architecture: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    Ok(format!("{arch}area: {:.1} mm²\n", arch.area_mm2()))
}

/// `ruby suite`: list a workload suite.
pub fn suite(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let suite = parse_suite(flags.require("name")?)?;
    let mut out = format!(
        "{} — {} unique layers, {:.2} GMACs total\n",
        suite.name(),
        suite.len(),
        suite.total_macs() as f64 / 1e9
    );
    for (layer, n) in suite.layers() {
        let _ = writeln!(out, "  {:<2}x {layer}", n);
    }
    Ok(out)
}

/// `ruby sweep`: PFM vs Ruby-S across Eyeriss-like array configurations
/// for a whole suite (a CLI-sized Fig. 13/14).
pub fn sweep(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let suite = parse_suite(flags.require("suite")?)?;
    let configs = flags.get("configs").unwrap_or("2x7,14x12,16x16");
    let quick = flags.get("budget").unwrap_or("medium") == "quick";
    let layers: Vec<ProblemShape> = if quick {
        suite.iter().step_by(4).take(4).cloned().collect()
    } else {
        suite.iter().cloned().collect()
    };
    let mut out = format!(
        "{:<10} {:>9} {:>13} {:>13} {:>9}\n",
        "config", "area mm²", "PFM EDP", "Ruby-S EDP", "Δ"
    );
    for config in configs.split(',') {
        let arch = parse_arch(&format!("eyeriss:{config}"))?;
        let area = arch.area_mm2();
        let explorer = Explorer::new(arch)
            .with_constraints(Constraints::eyeriss_row_stationary(3, 1))
            .with_search(budget_config(&flags)?);
        let mut pfm_energy = 0.0;
        let mut pfm_cycles = 0.0;
        let mut ruby_energy = 0.0;
        let mut ruby_cycles = 0.0;
        let mut complete = true;
        for layer in &layers {
            match (
                explorer.explore(layer, MapspaceKind::Pfm),
                explorer.explore(layer, MapspaceKind::RubyS),
            ) {
                (Some(p), Some(r)) => {
                    pfm_energy += p.report.energy();
                    pfm_cycles += p.report.cycles() as f64;
                    ruby_energy += r.report.energy();
                    ruby_cycles += r.report.cycles() as f64;
                }
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            let _ = writeln!(out, "{config:<10} some layer has no valid mapping");
            continue;
        }
        let pfm_edp = pfm_energy * pfm_cycles;
        let ruby_edp = ruby_energy * ruby_cycles;
        let _ = writeln!(
            out,
            "{:<10} {:>9.1} {:>13.4e} {:>13.4e} {:>+8.1}%",
            config,
            area,
            pfm_edp,
            ruby_edp,
            (ruby_edp / pfm_edp - 1.0) * 100.0
        );
    }
    Ok(out)
}

/// `ruby count`: mapspace-size comparison (the Table I machinery).
pub fn count(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let arch = parse_arch(flags.require("arch")?)?;
    let shape = parse_workload(flags.require("workload")?)?;
    let mut out = format!("tiling counts for {} on {}:\n", shape.name(), arch.name());
    for kind in MapspaceKind::ALL {
        let n = Mapspace::new(arch.clone(), shape.clone(), kind).count_tilings();
        let _ = writeln!(out, "  {:<8} {n}", kind.name());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn search_writes_mapping_and_evaluate_reads_it() {
        let dir = std::env::temp_dir().join("ruby_cli_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapping.json");
        let out = search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("cycles:      8"), "{out}");
        let eval = evaluate(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --mapping {}",
            path.display()
        )))
        .unwrap();
        assert!(eval.contains("cycles:      8"), "{eval}");
        let sim = simulate(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --mapping {}",
            path.display()
        )))
        .unwrap();
        assert!(sim.contains("113 MACs in 8 cycles"), "{sim}");
    }

    #[test]
    fn analyze_accepts_a_searched_mapping_and_emits_json() {
        let dir = std::env::temp_dir().join("ruby_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapping.json");
        search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --out {}",
            path.display()
        )))
        .unwrap();
        let spec = format!(
            "--arch toy:16,1024 --workload rank1:113 --mapping {}",
            path.display()
        );
        let human = analyze(&argv(&spec)).unwrap();
        assert!(human.contains("mapping is valid"), "{human}");
        let json = analyze(&argv(&format!("{spec} --json"))).unwrap();
        assert!(json.contains("\"valid\": true"), "{json}");
        // A mapping for the wrong workload must produce structured
        // diagnostics, not a bare rejection.
        let wrong = analyze(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:64 --mapping {}",
            path.display()
        )))
        .unwrap();
        assert!(wrong.contains("RBY"), "{wrong}");
        assert!(wrong.contains("mapping is invalid"), "{wrong}");
    }

    #[test]
    fn compare_lists_all_spaces() {
        let out = compare(&argv(
            "--arch toy:9,1024 --workload rank1:100 --budget quick",
        ))
        .unwrap();
        for name in ["PFM", "Ruby", "Ruby-S", "Ruby-T"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn bad_budget_and_objective_rejected() {
        assert!(search(&argv(
            "--arch toy:4,1024 --workload rank1:8 --budget enormous"
        ))
        .is_err());
        assert!(search(&argv(
            "--arch toy:4,1024 --workload rank1:8 --objective happiness"
        ))
        .is_err());
        assert!(search(&argv(
            "--arch toy:4,1024 --workload rank1:8 --strategy genetic"
        ))
        .is_err());
        assert!(search(&argv("--arch toy:4,1024 --workload rank1:8 --prune maybe")).is_err());
    }

    #[test]
    fn exhaustive_strategy_reports_pruning_counters() {
        let out = search(&argv(
            "--arch toy:16,1024 --workload rank1:113 --budget quick \
             --strategy exhaustive --threads 1",
        ))
        .unwrap();
        assert!(out.contains("cycles:      8"), "{out}");
        assert!(out.contains("considered:"), "{out}");
        assert!(out.contains("pruned"), "{out}");
    }

    #[test]
    fn anneal_strategy_runs_from_the_cli() {
        let out = search(&argv(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --strategy anneal",
        ))
        .unwrap();
        assert!(out.contains("cycles:      8"), "{out}");
    }

    #[test]
    fn search_streams_metrics_jsonl_and_versioned_json() {
        use serde::Deserialize as _;
        let dir = std::env::temp_dir().join("ruby_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let json = search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --json --metrics-out {}",
            path.display()
        )))
        .unwrap();
        let value = serde_json::from_str::<serde::Value>(&json).expect("stdout parses");
        assert_eq!(
            value.get("schema"),
            Some(&serde::Value::U64(SCHEMA_VERSION))
        );
        let outcome = SearchOutcome::from_value(&value).expect("stdout is a SearchOutcome");

        let stream = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<serde::Value> = stream
            .lines()
            .map(|l| serde_json::from_str(l).expect("every JSONL record parses"))
            .collect();
        assert!(lines.len() >= 2, "want snapshots + summary:\n{stream}");
        let snapshot = SearchSnapshot::from_value(&lines[0]).expect("first record is a snapshot");
        assert!(snapshot.seq >= 1);
        let summary = lines
            .iter()
            .find(|v| v.get("event") == Some(&serde::Value::Str("summary".to_owned())))
            .expect("stream has a summary event");
        let streamed = SearchOutcome::from_value(summary).expect("summary is a SearchOutcome");
        assert_eq!(streamed.evaluations, outcome.evaluations);
        assert_eq!(streamed.valid, outcome.valid);
        assert_eq!(
            streamed.best.map(|b| b.cost.to_bits()),
            outcome.best.map(|b| b.cost.to_bits())
        );
    }

    #[test]
    fn analyze_writes_its_report_to_a_file() {
        let dir = std::env::temp_dir().join("ruby_cli_analyze_out_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mapping_path = dir.join("mapping.json");
        let report_path = dir.join("analysis.json");
        search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --out {}",
            mapping_path.display()
        )))
        .unwrap();
        let human = analyze(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --mapping {} --out {}",
            mapping_path.display(),
            report_path.display()
        )))
        .unwrap();
        assert!(human.contains("mapping is valid"), "{human}");
        let written = std::fs::read_to_string(&report_path).unwrap();
        assert!(written.contains("\"valid\": true"), "{written}");
    }

    #[test]
    fn sweep_runs_quickly_on_subset() {
        let out = sweep(&argv("--suite mobilenet --configs 14x12 --budget quick")).unwrap();
        assert!(out.contains("14x12"), "{out}");
        assert!(out.contains('%'), "{out}");
    }

    #[test]
    fn search_checkpoints_and_replays_a_finished_run() {
        let dir = std::env::temp_dir().join("ruby_cli_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let _ = std::fs::remove_file(&path);
        let spec = format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --strategy exhaustive \
             --threads 1 --json --checkpoint {}",
            path.display()
        );
        let first = search(&argv(&spec)).unwrap();
        assert!(path.exists(), "terminal checkpoint written");
        // Resuming a finished run replays its recorded outcome instead
        // of recomputing; the JSON documents must agree.
        let replayed = search(&argv(&format!("{spec} --resume"))).unwrap();
        assert_eq!(first, replayed);
    }

    #[test]
    fn resume_without_checkpoint_is_a_usage_error() {
        assert!(matches!(
            search(&argv("--arch toy:4,1024 --workload rank1:8 --resume")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn resume_under_a_different_config_is_a_checkpoint_error() {
        let dir = std::env::temp_dir().join("ruby_cli_ckpt_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let _ = std::fs::remove_file(&path);
        search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --threads 1 \
             --seed 5 --checkpoint {}",
            path.display()
        )))
        .unwrap();
        let err = search(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --threads 1 \
             --seed 6 --checkpoint {} --resume",
            path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn count_orders_match_table1() {
        let out = count(&argv("--arch toy:9,1024 --workload rank1:99")).unwrap();
        assert!(out.contains("PFM"), "{out}");
        assert!(out.contains("Ruby-T"), "{out}");
    }
}
