//! The `ruby` command-line tool. Run `ruby help` for usage.
//!
//! Signal discipline for long runs: the first SIGINT/SIGTERM asks the
//! running search to drain — finish the batch in flight, write a final
//! checkpoint if `--checkpoint` was given, and report a normal (if
//! `stopped-early`) outcome. A second signal exits immediately with
//! the conventional 130 status.

#[cfg(unix)]
mod signals {
    use std::time::Duration;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    /// The handler itself: async-signal-safe by construction — it only
    /// bumps an atomic counter. All real work happens on the watcher
    /// thread below.
    extern "C" fn on_signal(_signum: i32) {
        ruby_cli::interrupts::note_signal();
    }

    /// Installs the handlers and spawns the watcher thread that turns
    /// signal counts into actions (1 = graceful drain, 2 = hard exit).
    pub fn install() {
        // justified: a failed signal(2) registration only costs the
        // graceful-drain feature; the search itself is unaffected, so
        // degrade silently rather than abort startup.
        unsafe {
            let _ = signal(SIGINT, on_signal as *const () as usize);
            let _ = signal(SIGTERM, on_signal as *const () as usize);
        }
        std::thread::spawn(|| {
            let mut drained = false;
            loop {
                let count = ruby_cli::interrupts::signal_count();
                if count >= 2 {
                    // Second signal: the user wants out *now*. 130 is
                    // the conventional fatal-SIGINT status.
                    unsafe { _exit(130) };
                }
                if count >= 1 && !drained {
                    ruby_cli::interrupts::request_stop();
                    drained = true;
                    eprintln!("ruby: interrupt received — draining (press again to exit hard)");
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    }
}

fn main() {
    #[cfg(unix)]
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ruby_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("ruby: {e}");
            std::process::exit(1);
        }
    }
}
