//! The `ruby` command-line tool. Run `ruby help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ruby_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("ruby: {e}");
            std::process::exit(1);
        }
    }
}
