//! `ruby serve` and `ruby query`: the mapper-as-a-service front door.
//!
//! `serve` opens a [`MapperService`] over a durable store and answers
//! newline-delimited JSON [`MapQuery`] lines — from stdin/stdout by
//! default, or from a Unix socket with `--socket <path>`. `query`
//! builds one query from the familiar spec flags and either answers it
//! locally against a store (`--store`) or ships it to a running server
//! (`--socket`); `--print` just emits the protocol line for scripting.
//!
//! Output flags are the shared [`OutputOpts`] set: `--json`, `--out`,
//! `--progress`, `--metrics-out` mean the same thing here as in
//! `ruby search` and `ruby analyze`.

use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc;
use std::time::Duration;

use ruby_core::prelude::*;
use ruby_server::{wire, MapQuery, MapResponse, MapperService, ServiceConfig};
use serde::{Deserialize as _, Serialize as _};

use crate::parse::{parse_arch, parse_kind, parse_workload, OutputOpts};
use crate::{CliError, Flags};

/// How long blocking loops sleep between [`StopToken`] polls, so one
/// SIGTERM drains the server promptly even with a connection open.
const POLL: Duration = Duration::from_millis(50);

/// `ruby serve`: answer mapping queries from a durable store, searching
/// only on cold misses.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &OutputOpts::BOOLS)?;
    let output = OutputOpts::from_flags(&flags);
    let mut service = MapperService::open(service_config(&flags)?)?;
    if let Some(sinks) = output.sink()? {
        service = service.with_progress(Box::new(sinks));
    }
    let token = service.stop_token();
    crate::interrupts::register(&token);

    match flags.get("socket") {
        Some(path) => serve_socket(&service, &token, path)?,
        None => serve_stdio(&service, &token)?,
    }

    service.compact()?;
    let stats = service.stats();
    let summary = serde::Value::Obj(vec![
        ("queries".to_owned(), serde::Value::U64(stats.queries)),
        ("store_hits".to_owned(), serde::Value::U64(stats.store_hits)),
        (
            "cold_searches".to_owned(),
            serde::Value::U64(stats.cold_searches),
        ),
        (
            "store_entries".to_owned(),
            serde::Value::U64(service.store_len() as u64),
        ),
    ]);
    if let Some(path) = &output.out {
        let json = serde_json::to_string_pretty(&summary)
            .map_err(|e| CliError::Spec(format!("serializing summary: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    if output.json {
        return serde_json::to_string_pretty(&summary)
            .map_err(|e| CliError::Spec(format!("serializing summary: {e}")));
    }
    Ok(format!(
        "served {} queries ({} warm, {} cold); store holds {} mappings\n",
        stats.queries,
        stats.store_hits,
        stats.cold_searches,
        service.store_len()
    ))
}

/// `ruby query`: one mapping query against a store or a running server.
pub fn query(args: &[String]) -> Result<String, CliError> {
    let mut bools = vec!["print"];
    bools.extend(OutputOpts::BOOLS);
    let flags = Flags::parse(args, &bools)?;
    let output = OutputOpts::from_flags(&flags);
    let query = MapQuery {
        arch: parse_arch(flags.require("arch")?)?,
        workload: parse_workload(flags.require("workload")?)?,
        mapspace: parse_kind(flags.get("space").unwrap_or("ruby-s"))?,
        objective: flags
            .get("objective")
            .unwrap_or("edp")
            .parse()
            .map_err(|e: ConfigError| CliError::Usage(e.to_string()))?,
        budget: flags
            .get("budget")
            .unwrap_or("medium")
            .parse()
            .map_err(|e: ruby_server::ServeError| CliError::Usage(e.to_string()))?,
    };
    let line = serde_json::to_string(&query.to_value())
        .map_err(|e| CliError::Spec(format!("serializing query: {e}")))?;
    if flags.has("print") {
        return Ok(format!("{line}\n"));
    }

    let response = match (flags.get("socket"), flags.get("store")) {
        (Some(path), _) => query_socket(path, &line)?,
        (None, Some(_)) => {
            let mut service = MapperService::open(service_config(&flags)?)?;
            if let Some(sinks) = output.sink()? {
                service = service.with_progress(Box::new(sinks));
            }
            crate::interrupts::register(&service.stop_token());
            service.handle(&query)?
        }
        (None, None) => {
            return Err(CliError::Usage(
                "query needs --store <log> (local) or --socket <path> (remote)".into(),
            ));
        }
    };

    if let Some(path) = &output.out {
        let json = serde_json::to_string_pretty(&response.to_value())
            .map_err(|e| CliError::Spec(format!("serializing response: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    if output.json {
        return serde_json::to_string_pretty(&response.to_value())
            .map_err(|e| CliError::Spec(format!("serializing response: {e}")));
    }
    Ok(render_response(&response))
}

/// The service wiring shared by `serve` and local `query`.
fn service_config(flags: &Flags) -> Result<ServiceConfig, CliError> {
    let mut config = ServiceConfig::new(flags.require("store")?);
    if let Some(workers) = flags.get("workers") {
        config.workers = workers
            .parse()
            .ok()
            .filter(|&w: &usize| w > 0)
            .ok_or_else(|| CliError::Usage("--workers must be a positive number".into()))?;
    }
    if let Some(seed) = flags.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| CliError::Usage("--seed must be a number".into()))?;
    }
    if let Some(dir) = flags.get("checkpoint-dir") {
        std::fs::create_dir_all(dir)?;
        config.checkpoint_dir = Some(dir.into());
    }
    Ok(config)
}

fn render_response(response: &MapResponse) -> String {
    let source = match response.source {
        ruby_server::ResponseSource::Store => "warm (store)",
        ruby_server::ResponseSource::Search => "cold (search)",
    };
    let mut out = format!(
        "{source} answer for key {:016x} in {} µs:\n",
        response.key, response.micros
    );
    out.push_str(&format!(
        "  objective:   {} = {:.4e}\n  cycles:      {}\n  energy:      {:.4e}\n  evaluations: {}\n",
        response.objective, response.cost, response.cycles, response.energy, response.evaluations
    ));
    out
}

/// The stdin/stdout protocol loop: a reader thread feeds lines through
/// a channel so the main loop can keep polling the stop token; EOF or
/// the first signal ends the session cleanly.
fn serve_stdio(service: &MapperService, token: &StopToken) -> Result<(), CliError> {
    let (sender, lines) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if sender.send(line).is_err() {
                break;
            }
        }
    });
    loop {
        if token.stop_requested() {
            return Ok(());
        }
        match lines.recv_timeout(POLL) {
            Ok(line) => {
                if let Some(response) = wire::handle_line(service, &line) {
                    let mut out = std::io::stdout().lock();
                    writeln!(out, "{response}")?;
                    out.flush()?;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// The Unix-socket protocol loop: accept one connection at a time and
/// speak the same line protocol; the stop token is polled between
/// accepts and between lines.
#[cfg(unix)]
fn serve_socket(service: &MapperService, token: &StopToken, path: &str) -> Result<(), CliError> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    while !token.stop_requested() {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(service, token, stream)?,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e.into());
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_service: &MapperService, _token: &StopToken, _path: &str) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; serve over stdin/stdout instead".into(),
    ))
}

#[cfg(unix)]
fn serve_connection(
    service: &MapperService,
    token: &StopToken,
    stream: std::os::unix::net::UnixStream,
) -> Result<(), CliError> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !token.stop_requested() {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if let Some(response) = wire::handle_line(service, &line) {
                    writeln!(writer, "{response}")?;
                    writer.flush()?;
                }
                line.clear();
            }
            // A timeout leaves any partial line in the buffer; keep
            // accumulating after the next stop-token poll.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    Ok(())
}

/// One round trip to a running `ruby serve --socket` server.
#[cfg(unix)]
fn query_socket(path: &str, line: &str) -> Result<MapResponse, CliError> {
    let stream = std::os::unix::net::UnixStream::connect(path)
        .map_err(|e| CliError::Spec(format!("connecting to {path}: {e}")))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    parse_response(&response)
}

#[cfg(not(unix))]
fn query_socket(_path: &str, _line: &str) -> Result<MapResponse, CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; use --store for a local query".into(),
    ))
}

/// Parses one server response line, surfacing protocol-level error
/// objects as [`CliError::Empty`].
fn parse_response(line: &str) -> Result<MapResponse, CliError> {
    let value: serde::Value = serde_json::from_str(line.trim())
        .map_err(|e| CliError::Spec(format!("unparseable server response: {e}")))?;
    if let Some(serde::Value::Str(message)) = value.get("error") {
        return Err(CliError::Empty(format!(
            "server refused the query: {message}"
        )));
    }
    MapResponse::from_value(&value).map_err(|e| CliError::Spec(format!("server response: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ruby-cli-serve-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn print_emits_a_protocol_line() {
        let out = query(&argv(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --print",
        ))
        .unwrap();
        let parsed: MapQuery = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(parsed.budget, ruby_server::QueryBudget::Quick);
        assert_eq!(parsed.mapspace, MapspaceKind::RubyS);
    }

    #[test]
    fn local_queries_warm_hit_on_repeat() {
        let dir = test_dir("local");
        let store = dir.join("store.log");
        let spec = format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --store {}",
            store.display()
        );
        let cold = query(&argv(&spec)).unwrap();
        assert!(cold.contains("cold (search)"), "{cold}");
        let warm = query(&argv(&format!("{spec} --json"))).unwrap();
        assert!(warm.contains("\"source\": \"store\""), "{warm}");
        // Bit-identical costs: the warm response re-reads the record
        // the cold search stored.
        let warm_response: MapResponse = serde_json::from_str(&warm).unwrap();
        assert!(
            cold.contains(&format!("{:.4e}", warm_response.cost)),
            "{cold}"
        );
    }

    #[test]
    fn query_without_a_target_is_a_usage_error() {
        assert!(matches!(
            query(&argv("--arch toy:4,1024 --workload rank1:8")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn query_writes_its_response_to_a_file() {
        let dir = test_dir("out");
        let store = dir.join("store.log");
        let out_path = dir.join("response.json");
        query(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --store {} --out {}",
            store.display(),
            out_path.display()
        )))
        .unwrap();
        let written = std::fs::read_to_string(&out_path).unwrap();
        let response: MapResponse = serde_json::from_str(&written).unwrap();
        assert_eq!(response.source, ruby_server::ResponseSource::Search);
    }

    #[cfg(unix)]
    #[test]
    fn socket_round_trip_warm_hits_a_running_server() {
        let dir = test_dir("socket");
        let store = dir.join("store.log");
        let socket = dir.join("mapper.sock");
        let service = MapperService::open(ServiceConfig::new(&store)).unwrap();
        let token = service.stop_token();
        let socket_path = socket.display().to_string();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_socket(&service, &token, &socket_path));
            // Wait for the socket to appear.
            for _ in 0..200 {
                if socket.exists() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let spec = format!(
                "--arch toy:16,1024 --workload rank1:113 --budget quick --socket {socket_path}"
            );
            let cold = query(&argv(&spec)).unwrap();
            assert!(cold.contains("cold (search)"), "{cold}");
            let warm = query(&argv(&format!("{spec} --json"))).unwrap();
            assert!(warm.contains("\"source\": \"store\""), "{warm}");
            token.request_stop();
            server.join().unwrap().unwrap();
        });
        assert!(!socket.exists(), "socket file cleaned up on shutdown");
    }

    #[test]
    fn bad_server_lines_surface_as_errors() {
        assert!(matches!(parse_response("not json"), Err(CliError::Spec(_))));
        assert!(matches!(
            parse_response(r#"{"schema":1,"error":"bad query"}"#),
            Err(CliError::Empty(_))
        ));
    }
}
