//! `ruby serve` and `ruby query`: the mapper-as-a-service front door.
//!
//! `serve` opens a [`MapperService`] over a durable store and answers
//! newline-delimited JSON [`MapQuery`] lines — from stdin/stdout by
//! default, or from a Unix socket with `--socket <path>` (multiple
//! concurrent connections, each with its own per-client admission
//! identity). `query` builds one query from the familiar spec flags and
//! either answers it locally against a store (`--store`) or ships it to
//! a running server (`--socket`); `--print` just emits the protocol
//! line for scripting.
//!
//! Overload behaviour is the service's (see `ruby_server::service`):
//! warm hits always answer, cold work beyond `--queue-depth` is shed
//! with a `retry_after_ms`, `--deadline-ms` turns slow searches into
//! `partial` best-so-far answers, and the shutdown summary reports the
//! shed/degraded/partial/breaker counters next to the query totals.
//!
//! Output flags are the shared [`OutputOpts`] set: `--json`, `--out`,
//! `--progress`, `--metrics-out` mean the same thing here as in
//! `ruby search` and `ruby analyze`.

use std::io::{Read, Write};
use std::sync::mpsc;
use std::time::Duration;

use ruby_core::prelude::*;
use ruby_server::{wire, MapQuery, MapResponse, MapperService, ResponseSource, ServiceConfig};
use serde::{Deserialize as _, Serialize as _};

use crate::parse::{parse_arch, parse_kind, parse_workload, OutputOpts};
use crate::{CliError, Flags};

/// How long blocking loops sleep between [`StopToken`] polls, so one
/// SIGTERM drains the server promptly even with a connection open.
const POLL: Duration = Duration::from_millis(50);

/// Transport read-chunk size for the capped line reader.
const CHUNK: usize = 64 * 1024;

/// `ruby serve`: answer mapping queries from a durable store, searching
/// only on cold misses.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &OutputOpts::BOOLS)?;
    let output = OutputOpts::from_flags(&flags);
    let mut service = MapperService::open(service_config(&flags)?)?;
    if let Some(sinks) = output.sink()? {
        service = service.with_progress(Box::new(sinks));
    }
    let token = service.stop_token();
    crate::interrupts::register(&token);

    match flags.get("socket") {
        Some(path) => serve_socket(&service, &token, path)?,
        None => serve_stdio(&service, &token)?,
    }

    service.compact()?;
    let stats = service.stats();
    let scrub = service.scrub_report();
    let summary = serde::Value::Obj(vec![
        ("queries".to_owned(), serde::Value::U64(stats.queries)),
        ("store_hits".to_owned(), serde::Value::U64(stats.store_hits)),
        (
            "cold_searches".to_owned(),
            serde::Value::U64(stats.cold_searches),
        ),
        ("shed".to_owned(), serde::Value::U64(stats.shed)),
        ("degraded".to_owned(), serde::Value::U64(stats.degraded)),
        ("partial".to_owned(), serde::Value::U64(stats.partial)),
        (
            "deadline_expired".to_owned(),
            serde::Value::U64(stats.deadline_expired),
        ),
        (
            "breaker_trips".to_owned(),
            serde::Value::U64(stats.breaker_trips),
        ),
        (
            "scrub_quarantined_frames".to_owned(),
            serde::Value::U64(scrub.frames_quarantined),
        ),
        (
            "scrub_quarantined_bytes".to_owned(),
            serde::Value::U64(scrub.bytes_quarantined),
        ),
        (
            "store_entries".to_owned(),
            serde::Value::U64(service.store_len() as u64),
        ),
    ]);
    if let Some(path) = &output.out {
        let json = serde_json::to_string_pretty(&summary)
            .map_err(|e| CliError::Spec(format!("serializing summary: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    if output.json {
        return serde_json::to_string_pretty(&summary)
            .map_err(|e| CliError::Spec(format!("serializing summary: {e}")));
    }
    let mut text = format!(
        "served {} queries ({} warm, {} cold); store holds {} mappings\n",
        stats.queries,
        stats.store_hits,
        stats.cold_searches,
        service.store_len()
    );
    text.push_str(&format!(
        "resilience: {} shed, {} degraded, {} partial, {} deadline-expired, {} breaker trips\n",
        stats.shed, stats.degraded, stats.partial, stats.deadline_expired, stats.breaker_trips
    ));
    if scrub.frames_quarantined > 0 {
        text.push_str(&format!(
            "scrub quarantined {} damaged frames ({} bytes) to the sidecar\n",
            scrub.frames_quarantined, scrub.bytes_quarantined
        ));
    }
    Ok(text)
}

/// `ruby query`: one mapping query against a store or a running server.
pub fn query(args: &[String]) -> Result<String, CliError> {
    let mut bools = vec!["print"];
    bools.extend(OutputOpts::BOOLS);
    let flags = Flags::parse(args, &bools)?;
    let output = OutputOpts::from_flags(&flags);
    let deadline_ms = flags
        .get("deadline-ms")
        .map(|ms| {
            ms.parse::<u64>()
                .map_err(|_| CliError::Usage("--deadline-ms must be a number".into()))
        })
        .transpose()?;
    let query = MapQuery {
        arch: parse_arch(flags.require("arch")?)?,
        workload: parse_workload(flags.require("workload")?)?,
        mapspace: parse_kind(flags.get("space").unwrap_or("ruby-s"))?,
        objective: flags
            .get("objective")
            .unwrap_or("edp")
            .parse()
            .map_err(|e: ConfigError| CliError::Usage(e.to_string()))?,
        budget: flags
            .get("budget")
            .unwrap_or("medium")
            .parse()
            .map_err(|e: ruby_server::ServeError| CliError::Usage(e.to_string()))?,
        deadline_ms,
        client: flags.get("client").map(str::to_owned),
    };
    let line = serde_json::to_string(&query.to_value())
        .map_err(|e| CliError::Spec(format!("serializing query: {e}")))?;
    if flags.has("print") {
        return Ok(format!("{line}\n"));
    }

    let response = match (flags.get("socket"), flags.get("store")) {
        (Some(path), _) => query_socket(path, &line)?,
        (None, Some(_)) => {
            let mut service = MapperService::open(service_config(&flags)?)?;
            if let Some(sinks) = output.sink()? {
                service = service.with_progress(Box::new(sinks));
            }
            crate::interrupts::register(&service.stop_token());
            service.handle(&query)?
        }
        (None, None) => {
            return Err(CliError::Usage(
                "query needs --store <log> (local) or --socket <path> (remote)".into(),
            ));
        }
    };

    if let Some(path) = &output.out {
        let json = serde_json::to_string_pretty(&response.to_value())
            .map_err(|e| CliError::Spec(format!("serializing response: {e}")))?;
        write_atomic(path, json.as_bytes())?;
    }
    if output.json {
        return serde_json::to_string_pretty(&response.to_value())
            .map_err(|e| CliError::Spec(format!("serializing response: {e}")));
    }
    Ok(render_response(&response))
}

/// The service wiring shared by `serve` and local `query`.
fn service_config(flags: &Flags) -> Result<ServiceConfig, CliError> {
    let mut config = ServiceConfig::new(flags.require("store")?);
    if let Some(workers) = flags.get("workers") {
        config.workers = workers
            .parse()
            .ok()
            .filter(|&w: &usize| w > 0)
            .ok_or_else(|| CliError::Usage("--workers must be a positive number".into()))?;
    }
    if let Some(depth) = flags.get("queue-depth") {
        config.queue_depth = depth
            .parse()
            .map_err(|_| CliError::Usage("--queue-depth must be a number".into()))?;
    }
    if let Some(cap) = flags.get("max-inflight") {
        config.max_inflight_per_client = cap
            .parse()
            .map_err(|_| CliError::Usage("--max-inflight must be a number (0 disables)".into()))?;
    }
    if let Some(seed) = flags.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| CliError::Usage("--seed must be a number".into()))?;
    }
    if let Some(dir) = flags.get("checkpoint-dir") {
        std::fs::create_dir_all(dir)?;
        config.checkpoint_dir = Some(dir.into());
    }
    Ok(config)
}

fn render_response(response: &MapResponse) -> String {
    if response.source == ResponseSource::Shed {
        return format!(
            "shed: server overloaded; retry in {} ms (key {:016x})\n",
            response.retry_after_ms.unwrap_or(0),
            response.key
        );
    }
    let source = match response.source {
        ResponseSource::Store => "warm (store)",
        ResponseSource::Search => "cold (search)",
        ResponseSource::Partial => "partial (truncated search)",
        // justified: the shed arm returned above
        ResponseSource::Shed => unreachable!("shed responses render above"),
    };
    let degraded = if response.degraded {
        ", degraded: nearest warm neighbor"
    } else {
        ""
    };
    let mut out = format!(
        "{source}{degraded} answer for key {:016x} in {} µs:\n",
        response.key, response.micros
    );
    out.push_str(&format!(
        "  objective:   {} = {:.4e}\n  cycles:      {}\n  energy:      {:.4e}\n  evaluations: {}\n",
        response.objective, response.cost, response.cycles, response.energy, response.evaluations
    ));
    if let Some(reason) = &response.stop_reason {
        out.push_str(&format!("  stopped:     {reason}\n"));
    }
    out
}

/// Renders one reader event into its response line(s), if any.
fn handle_event(
    service: &MapperService,
    event: wire::LineEvent,
    client: Option<&str>,
) -> Option<String> {
    match event {
        wire::LineEvent::Line(line) => wire::handle_line(service, &line, client),
        wire::LineEvent::Oversized { bytes } => Some(wire::oversized_error_line(bytes)),
    }
}

/// The stdin/stdout protocol loop: a reader thread feeds capped line
/// events through a channel so the main loop can keep polling the stop
/// token; EOF or the first signal ends the session cleanly.
fn serve_stdio(service: &MapperService, token: &StopToken) -> Result<(), CliError> {
    let (sender, events) = mpsc::channel::<wire::LineEvent>();
    std::thread::spawn(move || {
        let mut stdin = std::io::stdin().lock();
        let mut reader = wire::LineReader::new();
        let mut chunk = [0u8; CHUNK];
        loop {
            match stdin.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    for event in reader.feed(&chunk[..n]) {
                        if sender.send(event).is_err() {
                            return;
                        }
                    }
                }
            }
        }
        // A final unterminated line (EOF mid-line) still gets answered.
        if let Some(event) = reader.finish() {
            let _ = sender.send(event);
        }
    });
    loop {
        if token.stop_requested() {
            return Ok(());
        }
        match events.recv_timeout(POLL) {
            Ok(event) => {
                if let Some(response) = handle_event(service, event, None) {
                    let mut out = std::io::stdout().lock();
                    writeln!(out, "{response}")?;
                    out.flush()?;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// The Unix-socket protocol loop: every accepted connection gets its own
/// thread (and its own `conn-N` admission identity); the stop token is
/// polled between accepts and between reads. A panic inside one
/// connection, or the `serve.accept` failpoint, costs that connection
/// alone — the listener keeps accepting.
#[cfg(unix)]
fn serve_socket(service: &MapperService, token: &StopToken, path: &str) -> Result<(), CliError> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut result = Ok(());
    let mut next_conn = 0u64;
    std::thread::scope(|scope| {
        while !token.stop_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    if matches!(
                        ruby_failpoints::hit("serve.accept"),
                        ruby_failpoints::Action::Err
                    ) {
                        // Injected accept failure: the peer sees its
                        // connection drop before any response.
                        drop(stream);
                        continue;
                    }
                    let client = format!("conn-{next_conn}");
                    next_conn += 1;
                    scope.spawn(move || {
                        // Contain connection-level panics: the listener
                        // and the other connections keep going.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_connection(service, token, stream, &client);
                        }));
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => {
                    result = Err(e.into());
                    break;
                }
            }
        }
    });
    let _ = std::fs::remove_file(path);
    result
}

#[cfg(not(unix))]
fn serve_socket(_service: &MapperService, _token: &StopToken, _path: &str) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; serve over stdin/stdout instead".into(),
    ))
}

/// One socket session: capped line reader in, response lines out. Write
/// failures (the peer vanished) and the `serve.respond` failpoint end
/// the session; they never take the server down.
#[cfg(unix)]
fn serve_connection(
    service: &MapperService,
    token: &StopToken,
    mut stream: std::os::unix::net::UnixStream,
    client: &str,
) {
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = wire::LineReader::new();
    let mut chunk = [0u8; CHUNK];
    'session: while !token.stop_requested() {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                for event in reader.feed(&chunk[..n]) {
                    if !respond(service, &mut writer, event, client) {
                        return;
                    }
                }
            }
            // A timeout just means no bytes yet; poll the token again.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break 'session,
        }
    }
    // A peer that shut down its write side mid-line still gets a
    // terminal response for what it sent (best-effort: it may be gone).
    if let Some(event) = reader.finish() {
        let _ = respond(service, &mut writer, event, client);
    }
}

/// Answers one reader event on a connection; `false` ends the session
/// (injected respond fault, or the peer is gone).
#[cfg(unix)]
fn respond(
    service: &MapperService,
    writer: &mut impl Write,
    event: wire::LineEvent,
    client: &str,
) -> bool {
    let Some(response) = handle_event(service, event, Some(client)) else {
        return true;
    };
    if matches!(
        ruby_failpoints::hit("serve.respond"),
        ruby_failpoints::Action::Err
    ) {
        // Injected respond failure: drop the connection instead of
        // answering — the client must survive a vanished response.
        return false;
    }
    writeln!(writer, "{response}")
        .and_then(|()| writer.flush())
        .is_ok()
}

/// One round trip to a running `ruby serve --socket` server. The
/// connect retries with bounded jittered backoff so a client racing the
/// server's bind (or a briefly restarting server) doesn't fail on the
/// first `ECONNREFUSED`.
#[cfg(unix)]
fn query_socket(path: &str, line: &str) -> Result<MapResponse, CliError> {
    let stream = connect_with_retry(path)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut response = String::new();
    if std::io::BufReader::new(stream).read_line(&mut response)? == 0 {
        return Err(CliError::Spec(
            "server closed the connection before responding; retry the query".into(),
        ));
    }
    parse_response(&response)
}

#[cfg(unix)]
fn connect_with_retry(path: &str) -> Result<std::os::unix::net::UnixStream, CliError> {
    const ATTEMPTS: u32 = 3;
    let mut backoff = Duration::from_millis(75);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if attempt < ATTEMPTS
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::NotFound
                    ) =>
            {
                // Jitter from the subsecond clock spreads simultaneous
                // retriers without a PRNG dependency.
                let jitter = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| u64::from(d.subsec_millis() % 40))
                    .unwrap_or(0);
                std::thread::sleep(backoff + Duration::from_millis(jitter));
                backoff *= 2;
            }
            Err(e) => {
                return Err(CliError::Spec(format!(
                    "connecting to {path} (attempt {attempt}): {e}"
                )))
            }
        }
    }
}

#[cfg(unix)]
use std::io::BufRead;

#[cfg(not(unix))]
fn query_socket(_path: &str, _line: &str) -> Result<MapResponse, CliError> {
    Err(CliError::Usage(
        "--socket needs Unix domain sockets; use --store for a local query".into(),
    ))
}

/// Parses one server response line, surfacing protocol-level error
/// objects as [`CliError::Empty`].
fn parse_response(line: &str) -> Result<MapResponse, CliError> {
    let value: serde::Value = serde_json::from_str(line.trim())
        .map_err(|e| CliError::Spec(format!("unparseable server response: {e}")))?;
    if let Some(serde::Value::Str(message)) = value.get("error") {
        return Err(CliError::Empty(format!(
            "server refused the query: {message}"
        )));
    }
    MapResponse::from_value(&value).map_err(|e| CliError::Spec(format!("server response: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ruby-cli-serve-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn print_emits_a_protocol_line() {
        let out = query(&argv(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --print",
        ))
        .unwrap();
        let parsed: MapQuery = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(parsed.budget, ruby_server::QueryBudget::Quick);
        assert_eq!(parsed.mapspace, MapspaceKind::RubyS);
        assert_eq!(parsed.deadline_ms, None);
        assert_eq!(parsed.client, None);
    }

    #[test]
    fn print_carries_deadline_and_client() {
        let out = query(&argv(
            "--arch toy:16,1024 --workload rank1:113 --budget quick \
             --deadline-ms 250 --client ci-bot --print",
        ))
        .unwrap();
        let parsed: MapQuery = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(parsed.deadline_ms, Some(250));
        assert_eq!(parsed.client.as_deref(), Some("ci-bot"));
    }

    #[test]
    fn local_queries_warm_hit_on_repeat() {
        let dir = test_dir("local");
        let store = dir.join("store.log");
        let spec = format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --store {}",
            store.display()
        );
        let cold = query(&argv(&spec)).unwrap();
        assert!(cold.contains("cold (search)"), "{cold}");
        let warm = query(&argv(&format!("{spec} --json"))).unwrap();
        assert!(warm.contains("\"source\": \"store\""), "{warm}");
        // Bit-identical costs: the warm response re-reads the record
        // the cold search stored.
        let warm_response: MapResponse = serde_json::from_str(&warm).unwrap();
        assert!(
            cold.contains(&format!("{:.4e}", warm_response.cost)),
            "{cold}"
        );
    }

    #[test]
    fn query_without_a_target_is_a_usage_error() {
        assert!(matches!(
            query(&argv("--arch toy:4,1024 --workload rank1:8")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn query_writes_its_response_to_a_file() {
        let dir = test_dir("out");
        let store = dir.join("store.log");
        let out_path = dir.join("response.json");
        query(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --store {} --out {}",
            store.display(),
            out_path.display()
        )))
        .unwrap();
        let written = std::fs::read_to_string(&out_path).unwrap();
        let response: MapResponse = serde_json::from_str(&written).unwrap();
        assert_eq!(response.source, ruby_server::ResponseSource::Search);
    }

    #[cfg(unix)]
    #[test]
    fn socket_round_trip_warm_hits_a_running_server() {
        let dir = test_dir("socket");
        let store = dir.join("store.log");
        let socket = dir.join("mapper.sock");
        let service = MapperService::open(ServiceConfig::new(&store)).unwrap();
        let token = service.stop_token();
        let socket_path = socket.display().to_string();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_socket(&service, &token, &socket_path));
            // No bind-wait here: the client's connect retry covers the
            // race with the server's bind.
            let spec = format!(
                "--arch toy:16,1024 --workload rank1:113 --budget quick --socket {socket_path}"
            );
            let cold = query(&argv(&spec)).unwrap();
            assert!(cold.contains("cold (search)"), "{cold}");
            let warm = query(&argv(&format!("{spec} --json"))).unwrap();
            assert!(warm.contains("\"source\": \"store\""), "{warm}");
            token.request_stop();
            server.join().unwrap().unwrap();
        });
        assert!(!socket.exists(), "socket file cleaned up on shutdown");
    }

    #[cfg(unix)]
    #[test]
    fn socket_connect_fails_cleanly_when_no_server_ever_binds() {
        let dir = test_dir("noserver");
        let socket = dir.join("absent.sock");
        let started = std::time::Instant::now();
        let result = query(&argv(&format!(
            "--arch toy:16,1024 --workload rank1:113 --budget quick --socket {}",
            socket.display()
        )));
        // Three attempts with backoff, then a clean spec error naming
        // the last attempt.
        assert!(matches!(result, Err(CliError::Spec(_))), "{result:?}");
        assert!(started.elapsed() >= Duration::from_millis(150));
    }

    #[test]
    fn bad_server_lines_surface_as_errors() {
        assert!(matches!(parse_response("not json"), Err(CliError::Spec(_))));
        assert!(matches!(
            parse_response(r#"{"schema":1,"error":"bad query"}"#),
            Err(CliError::Empty(_))
        ));
    }
}
