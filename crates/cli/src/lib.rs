//! Library backing the `ruby` command-line tool: spec parsing (presets
//! and JSON files), subcommand implementations, and report rendering.
//!
//! Spec syntax accepted everywhere a resource is named:
//!
//! * architectures — `eyeriss:14x12`, `simba:15,4,4`, `toy:16,1024`, or
//!   `@path/to/arch.json` (a serialized architecture);
//! * workloads — `rank1:113`, `gemm:M,N,K`,
//!   `conv:N,M,C,P,Q,R,S[,SH,SW]`, a suite layer `resnet50/conv1`, or
//!   `@layer.json`;
//! * mapspaces — `pfm`, `ruby`, `ruby-s`, `ruby-t`.
//!
//! See [`run`] for the subcommands.

pub mod commands;
pub mod parse;
pub mod serve;

use std::fmt;

pub use parse::{parse_arch, parse_kind, parse_workload, OutputOpts};

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed arguments.
    Usage(String),
    /// A spec string or file could not be parsed.
    Spec(String),
    /// A file could not be read or written.
    Io(std::io::Error),
    /// The requested operation found nothing (e.g. no valid mapping).
    Empty(String),
    /// A `--resume` checkpoint could not be used (corrupt, another
    /// schema version, or taken under a different configuration).
    Checkpoint(ruby_core::prelude::CheckpointError),
    /// The mapper service could not answer (store refused, cold search
    /// failed, or the service is draining).
    Serve(ruby_server::ServeError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Spec(msg) => write!(f, "spec error: {msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Empty(msg) => write!(f, "{msg}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CliError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ruby_core::prelude::CheckpointError> for CliError {
    fn from(e: ruby_core::prelude::CheckpointError) -> Self {
        CliError::Checkpoint(e)
    }
}

impl From<ruby_server::ServeError> for CliError {
    fn from(e: ruby_server::ServeError) -> Self {
        CliError::Serve(e)
    }
}

/// Signal-to-search plumbing shared between the binary's signal
/// handler and long-running subcommands.
///
/// The handler itself may only do async-signal-safe work, so it bumps
/// [`note_signal`]'s atomic counter and nothing else; a watcher thread
/// in the binary polls the count and trips the registered
/// [`StopToken`](ruby_core::prelude::StopToken) (first signal = drain
/// and checkpoint) or hard-exits (second signal).
pub mod interrupts {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Mutex, PoisonError};

    use ruby_core::prelude::StopToken;

    static SIGNALS: AtomicU32 = AtomicU32::new(0);
    static TOKEN: Mutex<Option<StopToken>> = Mutex::new(None);

    /// Records one delivered signal. Async-signal-safe: a single
    /// atomic increment, no locks, no allocation.
    pub fn note_signal() {
        SIGNALS.fetch_add(1, Ordering::SeqCst);
    }

    /// How many interrupt signals have been delivered so far.
    pub fn signal_count() -> u32 {
        SIGNALS.load(Ordering::SeqCst)
    }

    /// Makes `token` the one the watcher trips on the next signal.
    pub fn register(token: &StopToken) {
        *TOKEN.lock().unwrap_or_else(PoisonError::into_inner) = Some(token.clone());
    }

    /// Asks the registered token (if any) to drain gracefully.
    pub fn request_stop() {
        if let Some(token) = TOKEN
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            token.request_stop();
        }
    }
}

/// The usage text printed by `ruby help`.
pub const USAGE: &str = "\
ruby — imperfect-factorization mapping exploration

USAGE:
  ruby search   --arch <spec> --workload <spec> [--space <kind>] \\
                [--budget quick|medium|full] [--objective edp|energy|delay] \\
                [--strategy random|sampled|exhaustive|hybrid|anneal] [--prune on|off] \\
                [--threads <n>] [--seed <n>] [--eyeriss-constraints] \\
                [--json] [--out mapping.json] [--progress] \\
                [--metrics-out metrics.jsonl] \\
                [--max-evals <n>] [--max-seconds <s>] \\
                [--checkpoint run.ckpt] [--checkpoint-every <n>] [--resume]
  ruby evaluate --arch <spec> --workload <spec> --mapping <file.json>
  ruby analyze  --arch <spec> --workload <spec> --mapping <file.json> \\
                [--json] [--out analysis.json]
  ruby simulate --arch <spec> --workload <spec> --mapping <file.json>
  ruby compare  --arch <spec> --workload <spec> [--budget ...] [--eyeriss-constraints]
  ruby show     --arch <spec>
  ruby suite    --name resnet50|deepbench|alexnet|vgg16|mobilenet
  ruby sweep    --suite <name> [--configs 2x7,14x12,16x16] [--budget ...]
  ruby count    --arch <spec> --workload <spec>
  ruby serve    --store <log> [--socket <path>] [--workers <n>] [--seed <n>] \\
                [--queue-depth <n>] [--max-inflight <n>] \\
                [--checkpoint-dir <dir>] [--json] [--out summary.json] \\
                [--progress] [--metrics-out metrics.jsonl]
  ruby query    --arch <spec> --workload <spec> [--space <kind>] \\
                [--objective ...] [--budget quick|medium|full] \\
                [--deadline-ms <n>] [--client <id>] \\
                (--store <log> | --socket <path> | --print) \\
                [--json] [--out response.json] [--progress] [--metrics-out ...]
  ruby help

SPECS:
  arch:      eyeriss:14x12 | simba:15,4,4 | toy:16,1024 | @file.json
  workload:  rank1:113 | gemm:M,N,K | conv:N,M,C,P,Q,R,S[,SH,SW]
             | <suite>/<layer> | @file.json
  space:     pfm | ruby | ruby-s | ruby-t        (default ruby-s)

LONG RUNS:
  --max-evals / --max-seconds bound the search; interrupted or
  exhausted runs still report a complete outcome (marked stopped-early).
  --checkpoint writes a crash-safe resume file every --checkpoint-every
  evaluations (default 10000) and on SIGINT/SIGTERM; add --resume to
  continue a previous run bit-identically. A second signal exits hard.

SERVING:
  ruby serve answers newline-delimited JSON MapQuery lines (one object
  or an array per line) over stdin/stdout, or over a Unix socket with
  --socket. Known configs are answered from the store in microseconds;
  cold misses run a search and persist the winner. SIGTERM drains,
  compacts the store, and prints a summary. Build protocol lines with
  `ruby query ... --print`.

  Under overload the service degrades instead of queueing unboundedly:
  cold work beyond --queue-depth (default 16) is shed with a
  retry_after_ms, --max-inflight (default 8, 0 = off) caps one client's
  concurrent cold queries, --deadline-ms turns a slow search into a
  best-so-far `partial` answer, and repeated cold failures trip a
  circuit breaker. Warm hits always answer. On open the store log is
  scrubbed: damaged frames move to a `.quarantine` sidecar and intact
  records past them are recovered.
";

/// Parses argv (without the program name) and runs the subcommand,
/// returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong; the binary prints
/// it and exits nonzero.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(USAGE.to_string());
    };
    match command.as_str() {
        "search" => commands::search(rest),
        "evaluate" => commands::evaluate(rest),
        "analyze" => commands::analyze(rest),
        "simulate" => commands::simulate(rest),
        "compare" => commands::compare(rest),
        "show" => commands::show(rest),
        "suite" => commands::suite(rest),
        "sweep" => commands::sweep(rest),
        "count" => commands::count(rest),
        "serve" => serve::serve(rest),
        "query" => serve::query(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'; run `ruby help`"
        ))),
    }
}

/// A tiny flag parser: `--key value` pairs plus boolean `--flag`s.
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args`, treating `bools` as valueless switches.
    ///
    /// # Errors
    ///
    /// Rejects non-flag tokens and flags missing their value.
    pub fn parse(args: &[String], bools: &[&str]) -> Result<Flags, CliError> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected token '{arg}'")));
            };
            if bools.contains(&name) {
                flags.switches.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                flags.pairs.push((name.to_string(), value.clone()));
            }
        }
        Ok(flags)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `--name`, or a usage error.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if absent.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// Whether the boolean `--name` switch was present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let f = Flags::parse(&argv("--arch toy:4,1024 --verbose --n 3"), &["verbose"]).unwrap();
        assert_eq!(f.get("arch"), Some("toy:4,1024"));
        assert_eq!(f.get("n"), Some("3"));
        assert!(f.has("verbose"));
        assert!(!f.has("quiet"));
        assert!(f.require("missing").is_err());
    }

    #[test]
    fn flags_reject_stray_tokens() {
        assert!(Flags::parse(&argv("stray"), &[]).is_err());
        assert!(Flags::parse(&argv("--flag"), &[]).is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_search_and_count() {
        let out = run(&argv(
            "search --arch toy:16,1024 --workload rank1:113 --space ruby-s --budget quick",
        ))
        .unwrap();
        assert!(out.contains("cycles"), "{out}");
        assert!(out.contains('8'), "{out}");
        let count = run(&argv("count --arch toy:9,1024 --workload rank1:99")).unwrap();
        assert!(count.contains("PFM"), "{count}");
    }

    #[test]
    fn end_to_end_show_and_suite() {
        let show = run(&argv("show --arch eyeriss:14x12")).unwrap();
        assert!(show.contains("GLB"));
        let suite = run(&argv("suite --name resnet50")).unwrap();
        assert!(suite.contains("conv1"));
    }
}
