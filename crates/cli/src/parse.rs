//! Spec-string parsing: architectures, workloads and mapspace kinds from
//! compact CLI syntax or JSON files.

use ruby_core::prelude::*;

use crate::{CliError, Flags};

/// Normalized output options shared by every subcommand that produces
/// machine-readable results (`ruby search`, `ruby analyze`,
/// `ruby serve`, `ruby query`), so the four flags mean the same thing
/// everywhere: `--json` switches stdout to a JSON document, `--out
/// <path>` writes the command's artifact (best mapping / analysis
/// report / serve summary / response) to a file, `--progress` streams
/// live human-readable progress to stderr, and `--metrics-out <path>`
/// streams schema-versioned JSONL telemetry records. Commands using
/// this type must splice [`OutputOpts::BOOLS`] into their boolean flag
/// list when parsing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputOpts {
    /// Print the machine-readable JSON document instead of prose.
    pub json: bool,
    /// Write the command's artifact to this path.
    pub out: Option<String>,
    /// Stream live progress to stderr while work is running.
    pub progress: bool,
    /// Stream JSONL telemetry records (snapshots, summaries, metrics)
    /// to this path.
    pub metrics_out: Option<String>,
}

impl OutputOpts {
    /// The boolean switches this type consumes; splice into
    /// [`Flags::parse`]'s boolean list.
    pub const BOOLS: [&'static str; 2] = ["json", "progress"];

    /// Extracts the normalized output flags.
    pub fn from_flags(flags: &Flags) -> OutputOpts {
        OutputOpts {
            json: flags.has("json"),
            out: flags.get("out").map(str::to_owned),
            progress: flags.has("progress"),
            metrics_out: flags.get("metrics-out").map(str::to_owned),
        }
    }

    /// Builds the progress sink `--progress` / `--metrics-out` ask for:
    /// human-readable stderr lines, JSONL records, both, or `None` when
    /// neither flag was given.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] when the `--metrics-out` file cannot be
    /// created.
    pub fn sink(&self) -> Result<Option<MultiSink>, CliError> {
        let mut sinks = MultiSink::new();
        if self.progress {
            sinks.push(Box::new(HumanSink::stderr()));
        }
        if let Some(path) = &self.metrics_out {
            sinks.push(Box::new(JsonlSink::create(path)?));
        }
        Ok((!sinks.is_empty()).then_some(sinks))
    }
}

/// Parses an architecture spec: `eyeriss:COLSxROWS`, `simba:PES,VMACS,LANES`,
/// `toy:PES,BYTES`, or `@file.json` (a serialized
/// [`ruby_core::prelude::Architecture`]).
///
/// # Errors
///
/// Returns [`CliError::Spec`] on malformed specs and [`CliError::Io`] /
/// [`CliError::Spec`] on unreadable or invalid JSON files.
pub fn parse_arch(spec: &str) -> Result<Architecture, CliError> {
    if let Some(path) = spec.strip_prefix('@') {
        let text = std::fs::read_to_string(path)?;
        return serde_json::from_str(&text).map_err(|e| CliError::Spec(format!("{path}: {e}")));
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| CliError::Spec(format!("architecture '{spec}' has no ':'")))?;
    match kind {
        "eyeriss" => {
            let (c, r) = rest
                .split_once('x')
                .ok_or_else(|| CliError::Spec(format!("expected COLSxROWS, got '{rest}'")))?;
            Ok(presets::eyeriss_like(parse_u64(c)?, parse_u64(r)?))
        }
        "simba" => {
            let v = parse_u64_list(rest, 3)?;
            Ok(presets::simba_like(v[0], v[1], v[2]))
        }
        "toy" => {
            let v = parse_u64_list(rest, 2)?;
            Ok(presets::toy_linear(v[0], v[1]))
        }
        other => Err(CliError::Spec(format!(
            "unknown architecture family '{other}'"
        ))),
    }
}

/// Parses a workload spec: `rank1:D`, `gemm:M,N,K`,
/// `conv:N,M,C,P,Q,R,S[,SH,SW]`, `<suite>/<layer>`, or `@file.json`.
///
/// # Errors
///
/// Returns [`CliError::Spec`] for malformed specs or unknown layers.
pub fn parse_workload(spec: &str) -> Result<ProblemShape, CliError> {
    if let Some(path) = spec.strip_prefix('@') {
        let text = std::fs::read_to_string(path)?;
        return serde_json::from_str(&text).map_err(|e| CliError::Spec(format!("{path}: {e}")));
    }
    if let Some((suite_name, layer)) = spec.split_once('/') {
        let suite = parse_suite(suite_name)?;
        return suite
            .iter()
            .find(|l| l.name() == layer)
            .cloned()
            .ok_or_else(|| CliError::Spec(format!("suite '{suite_name}' has no layer '{layer}'")));
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| CliError::Spec(format!("workload '{spec}' has no ':'")))?;
    match kind {
        "rank1" => Ok(ProblemShape::rank1(
            format!("rank1_{rest}"),
            parse_u64(rest)?,
        )),
        "gemm" => {
            let v = parse_u64_list(rest, 3)?;
            Ok(ProblemShape::gemm(format!("gemm_{rest}"), v[0], v[1], v[2]))
        }
        "conv" => {
            let v: Vec<u64> = rest.split(',').map(parse_u64).collect::<Result<_, _>>()?;
            match v.len() {
                7 => Ok(ProblemShape::conv(
                    format!("conv_{rest}"),
                    v[0],
                    v[1],
                    v[2],
                    v[3],
                    v[4],
                    v[5],
                    v[6],
                    (1, 1),
                )),
                9 => Ok(ProblemShape::conv(
                    format!("conv_{rest}"),
                    v[0],
                    v[1],
                    v[2],
                    v[3],
                    v[4],
                    v[5],
                    v[6],
                    (v[7], v[8]),
                )),
                n => Err(CliError::Spec(format!(
                    "conv takes 7 or 9 numbers, got {n}"
                ))),
            }
        }
        other => Err(CliError::Spec(format!("unknown workload kind '{other}'"))),
    }
}

/// Parses a suite name.
///
/// # Errors
///
/// Returns [`CliError::Spec`] for unknown names.
pub fn parse_suite(name: &str) -> Result<suites::Suite, CliError> {
    match name {
        "resnet50" => Ok(suites::resnet50()),
        "deepbench" => Ok(suites::deepbench()),
        "alexnet" => Ok(suites::alexnet()),
        "vgg16" => Ok(suites::vgg16()),
        "mobilenet" => Ok(suites::mobilenet_v1_pointwise()),
        other => Err(CliError::Spec(format!(
            "unknown suite '{other}' (try resnet50, deepbench, alexnet, vgg16, mobilenet)"
        ))),
    }
}

/// Parses a mapspace kind: `pfm`, `ruby`, `ruby-s`, `ruby-t`.
///
/// # Errors
///
/// Returns [`CliError::Spec`] for unknown names.
pub fn parse_kind(name: &str) -> Result<MapspaceKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "pfm" => Ok(MapspaceKind::Pfm),
        "ruby" => Ok(MapspaceKind::Ruby),
        "ruby-s" | "rubys" => Ok(MapspaceKind::RubyS),
        "ruby-t" | "rubyt" => Ok(MapspaceKind::RubyT),
        other => Err(CliError::Spec(format!("unknown mapspace '{other}'"))),
    }
}

fn parse_u64(s: &str) -> Result<u64, CliError> {
    s.trim()
        .parse()
        .map_err(|_| CliError::Spec(format!("expected a number, got '{s}'")))
}

fn parse_u64_list(s: &str, n: usize) -> Result<Vec<u64>, CliError> {
    let v: Vec<u64> = s.split(',').map(parse_u64).collect::<Result<_, _>>()?;
    if v.len() != n {
        return Err(CliError::Spec(format!(
            "expected {n} numbers, got {}",
            v.len()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_specs() {
        assert_eq!(parse_arch("eyeriss:14x12").unwrap().total_mac_units(), 168);
        assert_eq!(parse_arch("simba:15,4,4").unwrap().total_mac_units(), 240);
        assert_eq!(parse_arch("toy:9,1024").unwrap().total_mac_units(), 9);
        assert!(parse_arch("eyeriss").is_err());
        assert!(parse_arch("warp:3").is_err());
        assert!(parse_arch("toy:9").is_err());
    }

    #[test]
    fn workload_specs() {
        assert_eq!(parse_workload("rank1:113").unwrap().macs(), 113);
        assert_eq!(parse_workload("gemm:4,5,6").unwrap().macs(), 120);
        let c = parse_workload("conv:1,8,4,10,10,3,3").unwrap();
        assert_eq!(c.bound(Dim::R), 3);
        let strided = parse_workload("conv:1,8,4,10,10,3,3,2,2").unwrap();
        assert_eq!(strided.stride(), (2, 2));
        assert!(parse_workload("conv:1,2,3").is_err());
        assert!(parse_workload("nonsense").is_err());
    }

    #[test]
    fn suite_layer_lookup() {
        let l = parse_workload("resnet50/conv1").unwrap();
        assert_eq!(l.bound(Dim::M), 64);
        assert!(parse_workload("resnet50/nope").is_err());
        assert!(parse_workload("nosuite/x").is_err());
    }

    #[test]
    fn kind_names() {
        assert_eq!(parse_kind("ruby-s").unwrap(), MapspaceKind::RubyS);
        assert_eq!(parse_kind("PFM").unwrap(), MapspaceKind::Pfm);
        assert!(parse_kind("perfect").is_err());
    }

    #[test]
    fn output_opts_normalize_the_shared_flags() {
        let flags = Flags::parse(
            &[
                "--json",
                "--out",
                "result.json",
                "--progress",
                "--metrics-out",
                "m.jsonl",
            ]
            .map(String::from),
            &OutputOpts::BOOLS,
        )
        .unwrap();
        assert_eq!(
            OutputOpts::from_flags(&flags),
            OutputOpts {
                json: true,
                out: Some("result.json".to_owned()),
                progress: true,
                metrics_out: Some("m.jsonl".to_owned()),
            }
        );
        let bare = Flags::parse(&[], &OutputOpts::BOOLS).unwrap();
        let opts = OutputOpts::from_flags(&bare);
        assert_eq!(opts, OutputOpts::default());
        // No output flags → no sink at all.
        assert!(opts.sink().unwrap().is_none());
    }

    #[test]
    fn json_round_trip_via_tempfile() {
        let arch = presets::toy_linear(4, 1024);
        let dir = std::env::temp_dir().join("ruby_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arch.json");
        std::fs::write(&path, serde_json::to_string(&arch).unwrap()).unwrap();
        let loaded = parse_arch(&format!("@{}", path.display())).unwrap();
        assert_eq!(loaded.total_mac_units(), 4);
    }
}
